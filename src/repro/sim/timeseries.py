"""Compact append-only time series.

The simulator records many per-component series (buffer occupancy, congestion
windows, application progress).  :class:`TimeSeries` stores them in growable
NumPy buffers with amortized O(1) appends and exposes a small analysis API
(resampling, integration, min/max/mean over windows) used by
:mod:`repro.analysis` and :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.errors import AnalysisError

__all__ = ["TimeSeries"]

_INITIAL_CAPACITY = 256


class TimeSeries:
    """An append-only ``(time, value)`` series backed by NumPy arrays.

    Times must be appended in non-decreasing order; this is validated because
    an out-of-order sample almost always indicates a bug in the caller.
    """

    def __init__(self, name: str = "", unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self._times = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._values = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._size = 0

    # ------------------------------------------------------------------ #
    # Construction / mutation
    # ------------------------------------------------------------------ #

    def append(self, time: float, value: float) -> None:
        """Append one sample; ``time`` must not precede the last sample."""
        if self._size and time < self._times[self._size - 1]:
            raise AnalysisError(
                f"time series {self.name!r}: sample at t={time} precedes "
                f"last sample at t={self._times[self._size - 1]}"
            )
        if self._size == self._times.shape[0]:
            self._grow()
        self._times[self._size] = time
        self._values[self._size] = value
        self._size += 1

    def extend(self, times: Iterable[float], values: Iterable[float]) -> None:
        """Bulk-append samples: vectorized validation, one capacity grow.

        Equivalent to calling :meth:`append` for each pair, but the
        monotonicity check runs as a single ``np.diff`` and the backing
        arrays grow at most once, so tracing hot paths (periodic sampling,
        recorder merges) pay O(n) instead of n validated appends.
        """
        if not isinstance(times, (np.ndarray, list, tuple)):
            times = list(times)
        if not isinstance(values, (np.ndarray, list, tuple)):
            values = list(values)
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.shape != values.shape:
            raise AnalysisError("times and values must have the same shape")
        if times.ndim != 1:
            raise AnalysisError("times and values must be one-dimensional")
        n = times.shape[0]
        if n == 0:
            return
        if times.shape[0] > 1 and np.any(np.diff(times) < 0):
            raise AnalysisError(
                f"time series {self.name!r}: bulk samples are not in "
                "non-decreasing time order"
            )
        if self._size and times[0] < self._times[self._size - 1]:
            raise AnalysisError(
                f"time series {self.name!r}: sample at t={times[0]} precedes "
                f"last sample at t={self._times[self._size - 1]}"
            )
        needed = self._size + n
        if needed > self._times.shape[0]:
            self._grow(minimum=needed)
        self._times[self._size : needed] = times
        self._values[self._size : needed] = values
        self._size = needed

    @classmethod
    def from_arrays(
        cls, times: np.ndarray, values: np.ndarray, name: str = "", unit: str = ""
    ) -> "TimeSeries":
        """Build a series from existing arrays (copied, order-validated)."""
        times = np.asarray(times, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if times.shape != values.shape:
            raise AnalysisError("times and values must have the same shape")
        if times.ndim != 1:
            raise AnalysisError("times and values must be one-dimensional")
        if times.size > 1 and np.any(np.diff(times) < 0):
            raise AnalysisError("times must be non-decreasing")
        series = cls(name=name, unit=unit)
        series._times = times.copy()
        series._values = values.copy()
        series._size = times.size
        return series

    def _grow(self, minimum: int = 0) -> None:
        new_capacity = max(_INITIAL_CAPACITY, self._times.shape[0] * 2, minimum)
        new_times = np.empty(new_capacity, dtype=np.float64)
        new_values = np.empty(new_capacity, dtype=np.float64)
        new_times[: self._size] = self._times[: self._size]
        new_values[: self._size] = self._values[: self._size]
        self._times = new_times
        self._values = new_values

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    @property
    def times(self) -> np.ndarray:
        """View of the sample times (do not mutate)."""
        return self._times[: self._size]

    @property
    def values(self) -> np.ndarray:
        """View of the sample values (do not mutate)."""
        return self._values[: self._size]

    def is_empty(self) -> bool:
        """True if no samples have been recorded."""
        return self._size == 0

    def last(self) -> Tuple[float, float]:
        """Return the most recent ``(time, value)`` sample."""
        if self._size == 0:
            raise AnalysisError(f"time series {self.name!r} is empty")
        return float(self._times[self._size - 1]), float(self._values[self._size - 1])

    def value_at(self, time: float) -> float:
        """Value of the step function defined by the samples at ``time``.

        The series is interpreted as piecewise-constant (sample-and-hold):
        the value at ``time`` is the value of the latest sample at or before
        ``time``.  Before the first sample the first value is returned.
        """
        if self._size == 0:
            raise AnalysisError(f"time series {self.name!r} is empty")
        idx = int(np.searchsorted(self.times, time, side="right")) - 1
        idx = max(idx, 0)
        return float(self._values[idx])

    # ------------------------------------------------------------------ #
    # Analysis helpers
    # ------------------------------------------------------------------ #

    def duration(self) -> float:
        """Time spanned by the samples (0 for fewer than two samples)."""
        if self._size < 2:
            return 0.0
        return float(self.times[-1] - self.times[0])

    def mean(self) -> float:
        """Time-weighted mean of the piecewise-constant series."""
        if self._size == 0:
            raise AnalysisError(f"time series {self.name!r} is empty")
        if self._size == 1 or self.duration() == 0.0:
            return float(self.values[-1])
        dt = np.diff(self.times)
        mean = float(np.sum(self.values[:-1] * dt) / np.sum(dt))
        # Accumulation rounding can push the quotient a few ULPs outside the
        # sampled range; the exact time-weighted mean never leaves it.
        return float(np.clip(mean, self.min(), self.max()))

    def max(self) -> float:
        """Maximum sampled value."""
        if self._size == 0:
            raise AnalysisError(f"time series {self.name!r} is empty")
        return float(np.max(self.values))

    def min(self) -> float:
        """Minimum sampled value."""
        if self._size == 0:
            raise AnalysisError(f"time series {self.name!r} is empty")
        return float(np.min(self.values))

    def integral(self) -> float:
        """Integral of the piecewise-constant series over its duration."""
        if self._size < 2:
            return 0.0
        dt = np.diff(self.times)
        return float(np.sum(self.values[:-1] * dt))

    def resample(self, times: np.ndarray) -> np.ndarray:
        """Sample-and-hold resampling of the series at ``times``."""
        times = np.asarray(times, dtype=np.float64)
        if self._size == 0:
            raise AnalysisError(f"time series {self.name!r} is empty")
        idx = np.searchsorted(self.times, times, side="right") - 1
        idx = np.clip(idx, 0, self._size - 1)
        return self.values[idx]

    def window(self, start: float, end: float) -> "TimeSeries":
        """Return a new series restricted to samples with start <= t <= end."""
        if end < start:
            raise AnalysisError(f"window end {end} precedes start {start}")
        mask = (self.times >= start) & (self.times <= end)
        return TimeSeries.from_arrays(
            self.times[mask], self.values[mask], name=self.name, unit=self.unit
        )

    def diff(self) -> "TimeSeries":
        """Series of first differences of values, timestamped at the later sample."""
        if self._size < 2:
            return TimeSeries(name=f"{self.name}.diff", unit=self.unit)
        return TimeSeries.from_arrays(
            self.times[1:], np.diff(self.values), name=f"{self.name}.diff", unit=self.unit
        )

    def to_dict(self) -> dict:
        """JSON-serializable representation."""
        return {
            "name": self.name,
            "unit": self.unit,
            "times": self.times.tolist(),
            "values": self.values.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TimeSeries":
        """Inverse of :meth:`to_dict`."""
        return cls.from_arrays(
            np.asarray(data["times"], dtype=np.float64),
            np.asarray(data["values"], dtype=np.float64),
            name=data.get("name", ""),
            unit=data.get("unit", ""),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name or "series"
        return f"<TimeSeries {label!r} n={self._size}>"
