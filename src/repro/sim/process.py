"""Generator-based simulation processes.

The I/O-path model itself is vectorized and does not need per-entity
coroutines, but several smaller models (the background flusher, the local
device benchmark of Table I, example scripts) read much more naturally as
sequential processes.  :class:`SimProcess` provides a minimal SimPy-like
abstraction on top of :class:`repro.sim.engine.Simulator`:

.. code-block:: python

    def writer(proc: SimProcess, device, nbytes):
        yield Timeout(0.5)                      # think time
        done = device.submit(nbytes)
        yield done                              # wait on a completion handle

    SimProcess.spawn(sim, writer, device, 2 * GiB)

A process is a generator that yields either :class:`Timeout` objects or
:class:`Completion` handles.  The process is resumed when the timeout expires
or the completion is signalled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority

__all__ = ["Timeout", "Completion", "SimProcess"]


@dataclass
class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"Timeout delay must be non-negative, got {self.delay}")


@dataclass
class Completion:
    """A one-shot completion handle a process can wait on.

    Another process (or plain engine callback) calls :meth:`succeed` to wake
    every waiter.  A value can be attached and is returned from the ``yield``.
    """

    label: str = ""
    _done: bool = field(default=False, init=False)
    _value: Any = field(default=None, init=False)
    _waiters: list["SimProcess"] = field(default_factory=list, init=False)

    @property
    def done(self) -> bool:
        """True once :meth:`succeed` has been called."""
        return self._done

    @property
    def value(self) -> Any:
        """Value passed to :meth:`succeed` (``None`` before completion)."""
        return self._value

    def succeed(self, sim: Simulator, value: Any = None) -> None:
        """Mark the completion done and wake all waiting processes."""
        if self._done:
            raise SimulationError(f"Completion {self.label!r} already succeeded")
        self._done = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._resume(sim, value)

    def add_waiter(self, proc: "SimProcess") -> None:
        """Register ``proc`` to be resumed when the completion fires."""
        self._waiters.append(proc)


class SimProcess:
    """A lightweight generator-driven simulation process.

    Use :meth:`spawn` to create and start one.  The generator function
    receives the :class:`SimProcess` as its first argument followed by any
    extra positional/keyword arguments.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Any, Any, Any],
        name: str = "process",
    ) -> None:
        self.sim = sim
        self.name = name
        self._generator = generator
        self._finished = False
        self._result: Any = None
        self._completion = Completion(label=f"{name}.done")

    # ------------------------------------------------------------------ #

    @classmethod
    def spawn(
        cls,
        sim: Simulator,
        func: Callable[..., Generator[Any, Any, Any]],
        *args: Any,
        name: Optional[str] = None,
        start_delay: float = 0.0,
        **kwargs: Any,
    ) -> "SimProcess":
        """Create a process from ``func`` and schedule its first step.

        ``func`` must be a generator function; it is called as
        ``func(process, *args, **kwargs)``.
        """
        proc_name = name or getattr(func, "__name__", "process")
        holder: dict[str, "SimProcess"] = {}

        def make() -> Generator[Any, Any, Any]:
            return func(holder["proc"], *args, **kwargs)

        proc = cls.__new__(cls)
        proc.sim = sim
        proc.name = proc_name
        proc._finished = False
        proc._result = None
        proc._completion = Completion(label=f"{proc_name}.done")
        holder["proc"] = proc
        proc._generator = make()
        sim.schedule_after(
            start_delay,
            lambda s: proc._resume(s, None),
            label=f"{proc_name}.start",
            priority=EventPriority.NORMAL,
        )
        return proc

    # ------------------------------------------------------------------ #

    @property
    def finished(self) -> bool:
        """True once the generator has returned or raised StopIteration."""
        return self._finished

    @property
    def result(self) -> Any:
        """Return value of the generator (``None`` until finished)."""
        return self._result

    @property
    def completion(self) -> Completion:
        """Completion handle other processes can wait on."""
        return self._completion

    # ------------------------------------------------------------------ #

    def _resume(self, sim: Simulator, value: Any) -> None:
        if self._finished:
            return
        try:
            yielded = self._generator.send(value)
        except StopIteration as stop:
            self._finished = True
            self._result = stop.value
            if not self._completion.done:
                self._completion.succeed(sim, stop.value)
            return
        self._handle_yield(sim, yielded)

    def _handle_yield(self, sim: Simulator, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            sim.schedule_after(
                yielded.delay,
                lambda s: self._resume(s, None),
                label=f"{self.name}.timeout",
            )
        elif isinstance(yielded, Completion):
            if yielded.done:
                # Resume immediately (same timestamp, later in event order).
                sim.schedule_after(
                    0.0,
                    lambda s: self._resume(s, yielded.value),
                    label=f"{self.name}.ready",
                )
            else:
                yielded.add_waiter(self)
        elif isinstance(yielded, SimProcess):
            self._handle_yield(sim, yielded.completion)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported object {yielded!r}; "
                "yield a Timeout, Completion, or SimProcess"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self._finished else "running"
        return f"<SimProcess {self.name!r} {state}>"
