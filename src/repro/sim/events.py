"""Event records used by the discrete-event engine.

Events are intentionally tiny: a time, a priority, an insertion sequence
number (for deterministic FIFO tie-breaking), a callback, and an optional
payload.  The engine orders events by ``(time, priority, sequence)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["EventPriority", "Event"]


class EventPriority(enum.IntEnum):
    """Relative ordering of events that share the same timestamp.

    Lower values run first.  The tiers are chosen so that, within a single
    simulated instant, state changes (application starts, flush triggers)
    happen before the model step that consumes them, and bookkeeping
    (trace sampling, watchdogs) runs last.
    """

    #: Control-plane changes: application phase starts, reconfigurations.
    CONTROL = 0
    #: Regular model activity: simulation steps, request issue/completion.
    NORMAL = 10
    #: Observation-only events: trace sampling, progress reporting.
    OBSERVE = 20
    #: Last-resort events: watchdogs, horizon checks.
    LAST = 30


@dataclass(order=False)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulated time (seconds) at which the callback fires.
    priority:
        Tie-break tier for events at the same time.
    seq:
        Insertion sequence number assigned by the engine; guarantees FIFO
        order among events with equal time and priority and makes the heap
        ordering total (callbacks are never compared).
    callback:
        Callable invoked as ``callback(simulator)`` when the event fires.
    label:
        Optional human-readable tag used in traces and error messages.
    payload:
        Optional arbitrary data attached to the event.
    cancelled:
        Cancelled events stay in the heap but are skipped when popped (the
        engine compacts the heap when cancelled entries dominate it).
    """

    time: float
    priority: EventPriority
    seq: int
    callback: Callable[[Any], None]
    label: str = ""
    payload: Optional[Any] = None
    cancelled: bool = field(default=False, compare=False)
    #: Set by the engine at scheduling time so it can keep an O(1) count of
    #: cancelled-but-still-heaped events (the compaction trigger).
    on_cancel: Optional[Callable[["Event"], None]] = field(
        default=None, compare=False, repr=False
    )
    #: Key time of the event's live heap entry, maintained by the engine.
    #: ``None`` once the event has fired (or before it is scheduled).  When an
    #: event is rescheduled in place to a *later* time, ``time`` moves ahead
    #: of ``heap_time`` and the engine lazily re-keys the entry when it
    #: surfaces; an entry whose key time differs from ``heap_time`` is a stale
    #: duplicate left behind by an *earlier* reschedule and is dropped.
    heap_time: Optional[float] = field(default=None, compare=False, repr=False)

    def sort_key(self) -> tuple[float, int, int]:
        """Return the total ordering key used by the event heap."""
        return (self.time, int(self.priority), self.seq)

    def cancel(self) -> None:
        """Mark the event as cancelled; the engine will skip it."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.on_cancel is not None:
            self.on_cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" {self.label!r}" if self.label else ""
        state = " (cancelled)" if self.cancelled else ""
        return f"<Event t={self.time:.6f} p={int(self.priority)} #{self.seq}{tag}{state}>"
