"""Discrete-event simulation substrate.

This subpackage contains the generic machinery that the I/O-path model in
:mod:`repro.model` is built on:

* :mod:`repro.sim.engine` — the event heap and simulation clock,
* :mod:`repro.sim.events` — event records and priorities,
* :mod:`repro.sim.process` — lightweight generator-based simulation processes,
* :mod:`repro.sim.rng` — reproducible, named random streams,
* :mod:`repro.sim.timeseries` — compact time-series storage,
* :mod:`repro.sim.tracing` — trace recording for post-hoc analysis.

Nothing in here knows about storage, networks, or file systems; it is a small
general-purpose DES kernel with deterministic ordering guarantees.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventPriority
from repro.sim.process import SimProcess, Timeout
from repro.sim.rng import RandomStreams
from repro.sim.timeseries import TimeSeries
from repro.sim.tracing import TraceRecorder

__all__ = [
    "Simulator",
    "Event",
    "EventPriority",
    "SimProcess",
    "Timeout",
    "RandomStreams",
    "TimeSeries",
    "TraceRecorder",
]
