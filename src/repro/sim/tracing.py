"""Trace recording.

A :class:`TraceRecorder` collects named :class:`~repro.sim.timeseries.TimeSeries`
plus discrete event marks (application start/end, Incast collapse episodes,
flush activations).  The I/O-path model owns one recorder per run; analysis
code in :mod:`repro.core` and :mod:`repro.analysis` consumes it.

Tracing is opt-in per category so that large sweeps (hundreds of Δ-graph
points) don't pay for per-connection window traces they never read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.sim.timeseries import TimeSeries

__all__ = ["TraceMark", "TraceRecorder", "TraceConfig"]


@dataclass(frozen=True)
class TraceMark:
    """A discrete, timestamped annotation (no value series attached)."""

    time: float
    category: str
    label: str
    data: Optional[dict] = None


@dataclass
class TraceConfig:
    """Which trace categories a run should record.

    Attributes
    ----------
    series_sample_period:
        Period (simulated seconds) at which periodic series (buffer levels,
        progress, windows) are sampled.
    record_windows:
        Record per-connection congestion-window series for the traced
        connections (Figures 10 and 11).  Expensive for large runs, so the
        set of traced connections can be restricted with
        ``window_connection_limit``.
    record_progress:
        Record per-application progress series (fraction of bytes completed).
    record_server_state:
        Record per-server buffer occupancy, drain rate and utilization.
    record_marks:
        Record discrete marks (collapse episodes, phase starts/ends).
    window_connection_limit:
        Maximum number of connections per application whose windows are
        traced (the paper traces a single client/server pair).
    """

    series_sample_period: float = 0.1
    record_windows: bool = False
    record_progress: bool = True
    record_server_state: bool = True
    record_marks: bool = True
    window_connection_limit: int = 4

    def __post_init__(self) -> None:
        if self.series_sample_period <= 0:
            raise AnalysisError("series_sample_period must be positive")
        if self.window_connection_limit < 0:
            raise AnalysisError("window_connection_limit must be non-negative")

    @property
    def records_series(self) -> bool:
        """True when any periodic series category is enabled.

        The simulator consults this *before* scheduling the sampling event:
        a fully disabled trace skips the per-sample aggregate reductions
        (progress fractions, buffer means, window means) entirely instead of
        computing and discarding them.
        """
        return self.record_windows or self.record_progress or self.record_server_state

    @classmethod
    def minimal(cls) -> "TraceConfig":
        """Cheapest configuration: only discrete marks and progress."""
        return cls(
            series_sample_period=1.0,
            record_windows=False,
            record_progress=False,
            record_server_state=False,
            record_marks=True,
        )

    @classmethod
    def full(cls, sample_period: float = 0.05) -> "TraceConfig":
        """Everything on, for the window/unfairness figures."""
        return cls(
            series_sample_period=sample_period,
            record_windows=True,
            record_progress=True,
            record_server_state=True,
            record_marks=True,
            window_connection_limit=8,
        )


class TraceRecorder:
    """Collects time series and marks produced during one simulation run."""

    def __init__(self, config: Optional[TraceConfig] = None) -> None:
        self.config = config or TraceConfig()
        self._series: Dict[str, TimeSeries] = {}
        self._marks: List[TraceMark] = []

    # ------------------------------------------------------------------ #
    # Series
    # ------------------------------------------------------------------ #

    def series(self, name: str, unit: str = "") -> TimeSeries:
        """Return (creating if needed) the series called ``name``."""
        if name not in self._series:
            self._series[name] = TimeSeries(name=name, unit=unit)
        return self._series[name]

    def record(self, name: str, time: float, value: float, unit: str = "") -> None:
        """Append one sample to the series called ``name``."""
        self.series(name, unit=unit).append(time, value)

    def has_series(self, name: str) -> bool:
        """True if a series called ``name`` exists and has samples."""
        return name in self._series and len(self._series[name]) > 0

    def get_series(self, name: str) -> TimeSeries:
        """Return an existing series or raise :class:`AnalysisError`."""
        if name not in self._series:
            raise AnalysisError(
                f"no trace series named {name!r}; known: {sorted(self._series)[:20]}"
            )
        return self._series[name]

    def series_names(self, prefix: str = "") -> List[str]:
        """Sorted names of recorded series, optionally filtered by prefix."""
        return sorted(name for name in self._series if name.startswith(prefix))

    # ------------------------------------------------------------------ #
    # Marks
    # ------------------------------------------------------------------ #

    def mark(
        self, time: float, category: str, label: str, data: Optional[dict] = None
    ) -> None:
        """Record a discrete annotation if marks are enabled."""
        if not self.config.record_marks:
            return
        self._marks.append(TraceMark(time=time, category=category, label=label, data=data))

    @property
    def marks(self) -> Tuple[TraceMark, ...]:
        """All recorded marks in insertion (and therefore time) order."""
        return tuple(self._marks)

    def marks_in_category(self, category: str) -> List[TraceMark]:
        """All marks with the given category."""
        return [m for m in self._marks if m.category == category]

    def count_marks(self, category: str, label: Optional[str] = None) -> int:
        """Number of marks matching ``category`` (and ``label`` if given)."""
        return sum(
            1
            for m in self._marks
            if m.category == category and (label is None or m.label == label)
        )

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """JSON-serializable dump of all series and marks."""
        return {
            "series": {name: s.to_dict() for name, s in self._series.items()},
            "marks": [
                {
                    "time": m.time,
                    "category": m.category,
                    "label": m.label,
                    "data": m.data,
                }
                for m in self._marks
            ],
        }

    def merge(self, other: "TraceRecorder", prefix: str = "") -> None:
        """Copy series and marks from ``other``, optionally prefixing names."""
        for name, series in other._series.items():
            target = self.series(prefix + name, unit=series.unit)
            target.extend(series.times, series.values)
        for m in other._marks:
            self._marks.append(
                TraceMark(time=m.time, category=m.category, label=prefix + m.label, data=m.data)
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceRecorder series={len(self._series)} marks={len(self._marks)}>"


def iter_series(recorder: TraceRecorder, prefix: str) -> Iterable[TimeSeries]:
    """Yield every series whose name starts with ``prefix``."""
    for name in recorder.series_names(prefix):
        yield recorder.get_series(name)
