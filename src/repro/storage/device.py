"""Generic storage-device model.

A device is described by a small set of parameters (sequential write
bandwidth, positioning cost, how much contiguous data the host writes per
stream before switching) and exposes one law:

    :meth:`DeviceSpec.effective_write_bw` — the aggregate write bandwidth the
    device delivers given the number of interleaved streams and the access
    granularity.

This single law is what produces, in the full model:

* Table I — the HDD loses bandwidth when two local applications interleave
  writes to two files, so the slowdown exceeds 2x, while the RAM backend
  shares fairly;
* Figures 2/3 — strided workloads with small stripe units push an HDD into
  its positioning-cost-dominated regime and interference is amplified;
* Figure 8 — larger stripe sizes increase the effective granularity at the
  device and recover bandwidth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro import units
from repro.errors import ConfigurationError

__all__ = ["DeviceKind", "DeviceSpec"]


class DeviceKind(enum.Enum):
    """Broad device categories used for reporting."""

    HDD = "hdd"
    SSD = "ssd"
    RAM = "ram"
    NULL = "null"


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of a backend storage device.

    Attributes
    ----------
    kind:
        Device category.
    name:
        Human-readable label used in reports ("HDD", "SSD", "RAM").
    write_bw:
        Sequential write bandwidth (bytes/s).  ``float("inf")`` models the
        PVFS ``null-aio`` method that discards data.
    positioning_cost:
        Time (seconds) lost whenever the device has to reposition between
        two non-contiguous accesses: head seek plus rotational latency for an
        HDD, translation/erase overheads for an SSD, zero for RAM.
    interleave_granule_cap:
        Maximum amount of contiguous data (bytes) the server writes from one
        stream before switching to another when several streams are active;
        bounds how much locality survives interleaving even for very large
        requests (it corresponds to the size of the server's flow buffers).
    sync_flush_cost:
        Additional fixed time (seconds) per synchronous flush when the file
        system runs with "Sync ON" (fsync-like barrier per write unit).
    """

    kind: DeviceKind
    name: str
    write_bw: float
    positioning_cost: float = 0.0
    interleave_granule_cap: float = 4 * units.MiB
    sync_flush_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.write_bw <= 0:
            raise ConfigurationError("write_bw must be positive")
        if self.positioning_cost < 0:
            raise ConfigurationError("positioning_cost must be non-negative")
        if self.interleave_granule_cap <= 0:
            raise ConfigurationError("interleave_granule_cap must be positive")
        if self.sync_flush_cost < 0:
            raise ConfigurationError("sync_flush_cost must be non-negative")
        # Memo for the bandwidth law below: the law is a pure function of
        # (n_streams, granularity) per (frozen) spec, and one simulation step
        # evaluates it several times per server with recurring arguments.
        # object.__setattr__ because the dataclass is frozen; the cache is not
        # a field, so equality/hash/asdict are unaffected.
        object.__setattr__(self, "_bw_cache", {})

    # ------------------------------------------------------------------ #
    # Bandwidth law
    # ------------------------------------------------------------------ #

    @property
    def is_unlimited(self) -> bool:
        """True for the null-aio pseudo device."""
        return self.write_bw == float("inf")

    def effective_write_bw(self, n_streams: int, granularity: float) -> float:
        """Aggregate write bandwidth with ``n_streams`` interleaved streams.

        Parameters
        ----------
        n_streams:
            Number of distinct write streams (files or well-separated file
            regions) the device serves concurrently.  ``0`` or ``1`` means a
            single sequential stream.
        granularity:
            Amount of contiguous data (bytes) written per stream between
            switches — in the full model this is the fragment size arriving
            at the server, capped by :attr:`interleave_granule_cap`.

        Returns
        -------
        float
            Aggregate bytes/s the device sustains (to be shared among the
            streams by the caller).

        Notes
        -----
        The law charges one :attr:`positioning_cost` per ``granularity``
        bytes whenever the access stream is not purely sequential::

            eff = write_bw / (1 + switch_fraction * positioning_cost * write_bw / granule)

        where ``switch_fraction`` is 0 for a single stream and approaches 1
        as the number of interleaved streams grows.
        """
        if self.is_unlimited:
            return float("inf")
        if granularity <= 0:
            raise ConfigurationError("granularity must be positive")
        n_streams = max(int(n_streams), 1)
        granule = min(float(granularity), self.interleave_granule_cap)
        key = (n_streams, granule)
        cached = self._bw_cache.get(key)
        if cached is not None:
            return cached
        switch_fraction = 1.0 - 1.0 / n_streams if n_streams > 1 else 0.0
        if self.positioning_cost == 0.0 or switch_fraction == 0.0:
            penalty = 0.0
        else:
            penalty = switch_fraction * self.positioning_cost * self.write_bw / granule
        result = self.write_bw / (1.0 + penalty)
        if len(self._bw_cache) >= 4096:
            self._bw_cache.clear()
        self._bw_cache[key] = result
        return result

    def effective_random_bw(self, granularity: float) -> float:
        """Bandwidth for fully random accesses of ``granularity`` bytes each.

        Equivalent to :meth:`effective_write_bw` with an infinite number of
        streams (every access pays the positioning cost).
        """
        if self.is_unlimited:
            return float("inf")
        if granularity <= 0:
            raise ConfigurationError("granularity must be positive")
        granule = min(float(granularity), self.interleave_granule_cap)
        if self.positioning_cost == 0.0:
            return self.write_bw
        return granule / (granule / self.write_bw + self.positioning_cost)

    def write_time(self, nbytes: float, n_streams: int = 1, granularity: float | None = None) -> float:
        """Time to write ``nbytes`` at the effective bandwidth."""
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        if self.is_unlimited:
            return 0.0
        granule = self.interleave_granule_cap if granularity is None else granularity
        return nbytes / self.effective_write_bw(n_streams, granule)

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #

    def with_write_bw(self, write_bw: float) -> "DeviceSpec":
        """Return a copy with a different sequential bandwidth."""
        return replace(self, write_bw=float(write_bw))

    def describe(self) -> str:
        """One-line human-readable description."""
        if self.is_unlimited:
            return f"{self.name}: discards data (null-aio)"
        return (
            f"{self.name}: {units.bandwidth_to_human(self.write_bw)} sequential, "
            f"{units.seconds_to_human(self.positioning_cost)} positioning cost"
        )
