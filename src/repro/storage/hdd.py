"""Hard-disk-drive preset.

Calibrated against the paper's Table I: a single local client writing 2 GB
contiguously takes about 13 seconds alone (≈ 155 MiB/s) and experiences a
2.5x slowdown when a second application interleaves writes to another file —
the extra 0.5x beyond fair sharing comes from head movement between the two
files, charged through the positioning cost.
"""

from __future__ import annotations

from repro import units
from repro.storage.device import DeviceKind, DeviceSpec

__all__ = ["hdd_7200rpm"]


def hdd_7200rpm(
    write_bw: float = 160 * units.MiB,
    positioning_cost: float = 8.0e-3,
    interleave_granule_cap: float = 2.5 * units.MiB,
) -> DeviceSpec:
    """A 7200 rpm SATA hard disk similar to the parasilo nodes' drives.

    Parameters
    ----------
    write_bw:
        Sequential write bandwidth (default 160 MiB/s).
    positioning_cost:
        Average seek plus rotational latency (default 8 ms).
    interleave_granule_cap:
        Contiguous run length preserved per stream under interleaving
        (default 2.5 MiB; calibrated against the paper's Table I slowdown of 2.49x).
    """
    return DeviceSpec(
        kind=DeviceKind.HDD,
        name="HDD",
        write_bw=write_bw,
        positioning_cost=positioning_cost,
        interleave_granule_cap=interleave_granule_cap,
        sync_flush_cost=1.0e-3,
    )
