"""Solid-state-drive preset.

Calibrated against Table I of the paper: a 2 GB local contiguous write takes
about 2.3 s alone (≈ 1.2 GiB/s including the client-side copy) and slows down
by roughly 1.9x under contention — SSDs tolerate interleaving far better than
spinning disks but still pay a small per-access overhead.
"""

from __future__ import annotations

from repro import units
from repro.storage.device import DeviceKind, DeviceSpec

__all__ = ["sata_ssd"]


def sata_ssd(
    write_bw: float = 1200 * units.MiB,
    positioning_cost: float = 80.0e-6,
    interleave_granule_cap: float = 256 * units.KiB,
) -> DeviceSpec:
    """A SATA/NVMe-class SSD.

    Parameters
    ----------
    write_bw:
        Sequential write bandwidth (default 1200 MiB/s).
    positioning_cost:
        Per-access overhead for non-sequential writes (default 80 µs,
        covering FTL translation and write-amplification effects).
    interleave_granule_cap:
        Contiguous run length preserved per stream under interleaving.
    """
    return DeviceSpec(
        kind=DeviceKind.SSD,
        name="SSD",
        write_bw=write_bw,
        positioning_cost=positioning_cost,
        interleave_granule_cap=interleave_granule_cap,
        sync_flush_cost=0.2e-3,
    )
