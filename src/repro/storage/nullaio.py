"""The PVFS ``null-aio`` pseudo device.

``null-aio`` is a Trove method that acknowledges writes without storing the
data anywhere.  The paper uses it to remove the backend entirely from the
I/O path (Figure 2(c)/(d)); whatever interference remains must come from the
network and the servers' request processing.
"""

from __future__ import annotations

from repro.storage.device import DeviceKind, DeviceSpec

__all__ = ["null_aio"]


def null_aio() -> DeviceSpec:
    """The data-discarding backend (infinite bandwidth, zero cost)."""
    return DeviceSpec(
        kind=DeviceKind.NULL,
        name="Null-aio",
        write_bw=float("inf"),
        positioning_cost=0.0,
        interleave_granule_cap=64 * 1024 * 1024,
        sync_flush_cost=0.0,
    )
