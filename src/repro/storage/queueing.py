"""Device-level queue accounting.

The integrated model tracks, per server, how much data is waiting for the
backend and how busy the backend has been.  :class:`DeviceQueue` wraps a
:class:`~repro.storage.device.DeviceSpec` with that accounting so the
root-cause analysis in :mod:`repro.core.rootcause` can report device
utilization and identify the device as (or rule it out as) the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.storage.device import DeviceSpec

__all__ = ["DeviceQueue"]


@dataclass
class DeviceQueue:
    """Accounting wrapper around a backend device.

    Attributes
    ----------
    device:
        The device specification (bandwidth law).
    pending_bytes:
        Bytes accepted by the server but not yet written to the device.
    """

    device: DeviceSpec
    pending_bytes: float = field(default=0.0, init=False)
    written_bytes: float = field(default=0.0, init=False)
    busy_time: float = field(default=0.0, init=False)
    observed_time: float = field(default=0.0, init=False)

    def enqueue(self, nbytes: float) -> None:
        """Add bytes to the device's pending queue."""
        if nbytes < 0:
            raise SimulationError("cannot enqueue a negative number of bytes")
        self.pending_bytes += nbytes

    def drain(self, dt: float, n_streams: int = 1, granularity: float = 4 * 1024 * 1024) -> float:
        """Write pending data for ``dt`` seconds; return bytes written.

        Also accumulates busy/observed time so that :meth:`utilization`
        reflects the fraction of time the device had work to do.
        """
        if dt <= 0:
            raise SimulationError("dt must be positive")
        self.observed_time += dt
        if self.pending_bytes <= 0:
            return 0.0
        if self.device.is_unlimited:
            written = self.pending_bytes
            self.pending_bytes = 0.0
            self.written_bytes += written
            # The null device is never "busy".
            return written
        rate = self.device.effective_write_bw(n_streams, granularity)
        capacity = rate * dt
        written = min(self.pending_bytes, capacity)
        self.pending_bytes -= written
        self.written_bytes += written
        self.busy_time += dt * (written / capacity if capacity > 0 else 0.0)
        return written

    def commit_step(self, nbytes: float, dt: float, n_streams: int, granularity: float) -> None:
        """Fused enqueue + drain for the per-step hot path.

        Same arithmetic as :meth:`enqueue` followed by :meth:`drain` (whose
        validation the stepper has already performed), in one call so the
        simulation loop pays a single method dispatch per server.
        """
        self.pending_bytes += nbytes
        self.observed_time += dt
        if self.pending_bytes <= 0:
            return
        if self.device.is_unlimited:
            self.written_bytes += self.pending_bytes
            self.pending_bytes = 0.0
            return
        rate = self.device.effective_write_bw(n_streams, granularity)
        capacity = rate * dt
        written = min(self.pending_bytes, capacity)
        self.pending_bytes -= written
        self.written_bytes += written
        self.busy_time += dt * (written / capacity if capacity > 0 else 0.0)

    def utilization(self) -> float:
        """Fraction of observed time the device spent writing (0 if unobserved)."""
        if self.observed_time == 0:
            return 0.0
        return min(self.busy_time / self.observed_time, 1.0)

    def reset(self) -> None:
        """Drop all accounting state."""
        self.pending_bytes = 0.0
        self.written_bytes = 0.0
        self.busy_time = 0.0
        self.observed_time = 0.0
