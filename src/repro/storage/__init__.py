"""Backend storage device models.

The paper compares three backend devices (HDD, SSD, RAM disk) plus the
``null-aio`` PVFS method that discards data.  The behaviours that matter for
interference are:

* the sequential bandwidth of the device,
* the cost of switching between interleaved streams (head seeks on HDD,
  much smaller penalties on SSD, none for RAM),
* the sensitivity to the access granularity (small strided writes on an HDD
  pay a positioning cost per access).

:class:`repro.storage.device.DeviceSpec` captures these parameters and
implements the effective-bandwidth law; :mod:`repro.storage.writeback`
implements the sync-OFF page-cache path.
"""

from repro.storage.device import DeviceKind, DeviceSpec
from repro.storage.hdd import hdd_7200rpm
from repro.storage.ssd import sata_ssd
from repro.storage.ram import ram_disk
from repro.storage.nullaio import null_aio
from repro.storage.writeback import WritebackCache
from repro.storage.queueing import DeviceQueue

__all__ = [
    "DeviceKind",
    "DeviceSpec",
    "hdd_7200rpm",
    "sata_ssd",
    "ram_disk",
    "null_aio",
    "WritebackCache",
    "DeviceQueue",
    "device_by_name",
    "DEVICE_PRESETS",
]


def device_by_name(name: str) -> DeviceSpec:
    """Look up a device preset by name (``"hdd"``, ``"ssd"``, ``"ram"``, ``"null"``)."""
    key = name.strip().lower()
    if key not in DEVICE_PRESETS:
        raise KeyError(
            f"unknown device preset {name!r}; available: {sorted(DEVICE_PRESETS)}"
        )
    return DEVICE_PRESETS[key]()


DEVICE_PRESETS = {
    "hdd": hdd_7200rpm,
    "disk": hdd_7200rpm,
    "ssd": sata_ssd,
    "ram": ram_disk,
    "memory": ram_disk,
    "null": null_aio,
    "null-aio": null_aio,
}
