"""Write-back page cache (the "Sync OFF" path).

With synchronization disabled, OrangeFS lets incoming data sit in
kernel-provided buffers and flushes it to the backend device later.  The
paper relies on this to rule the device out of the I/O path: as long as the
working set fits in memory the device never throttles the clients.

:class:`WritebackCache` models that behaviour:

* while the cache has room, it absorbs data at memory-copy speed;
* a background flusher continuously writes dirty data to the device at a
  configurable fraction of the device bandwidth;
* once the cache is full, the absorb rate degrades to the flush rate
  (write-through behaviour under memory pressure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError
from repro.storage.device import DeviceSpec

__all__ = ["WritebackCache"]


@dataclass
class WritebackCache:
    """Stateful write-back cache in front of a backend device.

    Attributes
    ----------
    capacity_bytes:
        Maximum amount of dirty data the cache may hold.
    memory_bw:
        Rate at which data can be copied into the cache (bytes/s).
    device:
        Backend device receiving flushed data.
    flush_bw_fraction:
        Fraction of the device's effective bandwidth the background flusher
        uses while clients are still writing.
    """

    capacity_bytes: float
    memory_bw: float
    device: DeviceSpec
    flush_bw_fraction: float = 0.7
    dirty_bytes: float = field(default=0.0, init=False)
    total_absorbed: float = field(default=0.0, init=False)
    total_flushed: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise ConfigurationError("capacity_bytes must be non-negative")
        if self.memory_bw <= 0:
            raise ConfigurationError("memory_bw must be positive")
        if not 0.0 < self.flush_bw_fraction <= 1.0:
            raise ConfigurationError("flush_bw_fraction must be in (0, 1]")

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    @property
    def free_bytes(self) -> float:
        """Remaining cache capacity."""
        return max(self.capacity_bytes - self.dirty_bytes, 0.0)

    @property
    def is_full(self) -> bool:
        """True when the cache cannot absorb at memory speed anymore."""
        return self.dirty_bytes >= self.capacity_bytes

    def absorb_rate(self, n_streams: int = 1, granularity: float = 4 * 1024 * 1024) -> float:
        """Rate (bytes/s) at which the cache can currently absorb new data.

        While there is room, data is absorbed at memory speed.  When the
        cache is full the absorb rate collapses to the flush rate: new data
        can only come in as fast as old data goes out.
        """
        if not self.is_full:
            return self.memory_bw
        return self.flush_rate(n_streams, granularity)

    def flush_rate(self, n_streams: int = 1, granularity: float = 4 * 1024 * 1024) -> float:
        """Rate (bytes/s) of the background flusher for the current layout."""
        if self.device.is_unlimited:
            return self.memory_bw
        return self.device.effective_write_bw(n_streams, granularity) * self.flush_bw_fraction

    # ------------------------------------------------------------------ #
    # State updates (called once per simulation step)
    # ------------------------------------------------------------------ #

    def absorb(self, nbytes: float, dt: float, n_streams: int = 1,
               granularity: float = 4 * 1024 * 1024) -> float:
        """Absorb up to ``nbytes`` during a step of length ``dt``.

        Returns the amount actually absorbed (limited by the absorb rate and
        by the room freed by flushing during the same step).
        """
        if nbytes < 0:
            raise SimulationError("cannot absorb a negative number of bytes")
        if dt <= 0:
            raise SimulationError("dt must be positive")
        rate_limit = self.absorb_rate(n_streams, granularity) * dt
        # Room available after this step's flushing is accounted by the
        # caller invoking flush() first; here we only respect current room
        # plus write-through at the flush rate when full.
        room = self.free_bytes
        if room <= 0:
            accepted = min(nbytes, rate_limit)
        else:
            accepted = min(nbytes, rate_limit, room + self.flush_rate(n_streams, granularity) * dt)
        self.dirty_bytes = min(self.dirty_bytes + accepted, self.capacity_bytes)
        self.total_absorbed += accepted
        return accepted

    def flush(self, dt: float, n_streams: int = 1,
              granularity: float = 4 * 1024 * 1024) -> float:
        """Run the background flusher for ``dt`` seconds; return bytes flushed."""
        if dt <= 0:
            raise SimulationError("dt must be positive")
        flushed = min(self.dirty_bytes, self.flush_rate(n_streams, granularity) * dt)
        self.dirty_bytes -= flushed
        self.total_flushed += flushed
        return flushed

    def drain_remaining_time(self, n_streams: int = 1,
                             granularity: float = 4 * 1024 * 1024) -> float:
        """Time needed to flush all currently dirty data at the full device rate."""
        if self.dirty_bytes == 0:
            return 0.0
        if self.device.is_unlimited:
            return 0.0
        rate = self.device.effective_write_bw(n_streams, granularity)
        return self.dirty_bytes / rate

    def reset(self) -> None:
        """Drop all state (used between experiment repetitions)."""
        self.dirty_bytes = 0.0
        self.total_absorbed = 0.0
        self.total_flushed = 0.0
