"""RAM-disk preset.

Used by the paper to rule out the backend device: writes land in a tmpfs-like
memory file system, so there is no positioning cost and the only limit is the
memory-copy bandwidth of the server process.
"""

from __future__ import annotations

from repro import units
from repro.storage.device import DeviceKind, DeviceSpec

__all__ = ["ram_disk"]


def ram_disk(write_bw: float = 2600 * units.MiB) -> DeviceSpec:
    """A tmpfs/ramdisk backend.

    Parameters
    ----------
    write_bw:
        Memory-copy bandwidth of the server's storage path
        (default 2600 MiB/s, calibrated so a local 2 GB write takes ≈ 1.3 s
        including the client-side copy, as in Table I).
    """
    return DeviceSpec(
        kind=DeviceKind.RAM,
        name="RAM",
        write_bw=write_bw,
        positioning_cost=0.0,
        interleave_granule_cap=64 * units.MiB,
        sync_flush_cost=0.0,
    )
