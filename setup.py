"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file only
exists so that legacy editable installs (``pip install -e . --no-use-pep517``
or ``python setup.py develop``) work on machines without the ``wheel``
package, e.g. air-gapped clusters.
"""

from setuptools import setup

setup()
