#!/usr/bin/env python
"""Checkpointing scenario: a large simulation collides with an analysis job.

The paper's motivation is exactly this situation: two unrelated applications
share the parallel file system and their I/O phases sometimes overlap.  This
example models

* ``climate`` — a large application checkpointing 48 MiB per process with
  collective contiguous writes (built through the IOR-style front end), and
* ``analysis`` — a smaller post-processing job writing strided output,

and asks two questions the paper's methodology answers:

1. how much does each application suffer depending on how their bursts align
   (the Δ-graph), and
2. does giving each of them half of the servers (the partitioning mitigation)
   help, and at what cost?
"""

from __future__ import annotations

import sys

from repro import units
from repro.config.presets import grid5000_platform, make_scenario
from repro.config.workload import PatternSpec
from repro.core.delta import run_delta_sweep
from repro.core.reporting import format_delta_sweep, format_table
from repro.core.scenarios import partitioned_servers_scenario
from repro.workload.ior import IORParameters, ior_application


def build_scenario(scale: str):
    """Two differently sized applications on the shared deployment."""
    base = make_scenario(scale, device="hdd", sync_mode="sync-on")

    climate_params = IORParameters(
        tasks=base.applications[0].n_processes,
        tasks_per_node=base.applications[0].procs_per_node,
        block_size=48 * units.MiB,
        transfer_size=48 * units.MiB,
    )
    climate = ior_application("climate", climate_params,
                              collective_overhead=base.applications[0].pattern.collective_overhead)

    analysis_pattern = PatternSpec.strided(
        bytes_per_process=8 * units.MiB,
        request_size=256 * units.KiB,
        collective_overhead=base.applications[1].pattern.collective_overhead,
    )
    analysis = base.applications[1].with_pattern(analysis_pattern)
    analysis = analysis.with_writers(analysis.n_nodes, 4, keep_total_bytes=True)

    # Rename for readability in the reports.
    import dataclasses

    analysis = dataclasses.replace(analysis, name="analysis")
    return base.with_applications([climate, analysis])


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "reduced"
    scenario = build_scenario(scale)
    print(scenario.describe())
    print()

    deltas = [-3.0, -1.5, 0.0, 1.5, 3.0]
    shared = run_delta_sweep(scenario, deltas, label="shared servers")
    print(format_delta_sweep(shared))
    print()

    partitioned = run_delta_sweep(
        partitioned_servers_scenario(scenario), deltas, label="partitioned servers"
    )
    rows = [
        [
            "shared",
            round(shared.alone_time("climate"), 2),
            round(shared.peak_interference_factor("climate"), 2),
            round(shared.peak_interference_factor("analysis"), 2),
        ],
        [
            "partitioned (6+6)",
            round(partitioned.alone_time("climate"), 2),
            round(partitioned.peak_interference_factor("climate"), 2),
            round(partitioned.peak_interference_factor("analysis"), 2),
        ],
    ]
    print(
        format_table(
            ["configuration", "climate alone (s)", "climate peak IF", "analysis peak IF"],
            rows,
            title="Does partitioning the servers help?",
        )
    )
    print()
    print(
        "Partitioning removes the cross-application interference but the large\n"
        "application pays for it with a slower interference-free checkpoint —\n"
        "the trade-off the paper's Section IV-A5 discusses."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
