#!/usr/bin/env python
"""Diagnose the root cause of interference the way the paper does.

Given one contended run, the paper asks: is the slowdown caused by a saturated
component (which one?), or by a flow-control breakdown (Incast) caused by the
interplay of a slow backend and the transport?  This example runs the same
configuration twice — once with HDDs and sync ON (the Incast-prone case) and
once with the null-aio backend (nothing to saturate) — and prints, for each:

* the per-component utilization ranking (root-cause attribution),
* the Incast diagnosis (window collapses, buffer pressure, victim application),
* the traced congestion-window statistics behind the paper's Figure 10.
"""

from __future__ import annotations

import sys

from repro.analysis.traces import compare_window_traces
from repro.config.presets import make_scenario
from repro.core.flowcontrol import diagnose_flow_control
from repro.core.rootcause import attribute_root_cause
from repro.model.simulator import simulate_scenario
from repro.sim.tracing import TraceConfig


def diagnose(label: str, scale: str, **scenario_kwargs) -> None:
    trace = TraceConfig(
        series_sample_period=0.05,
        record_windows=True,
        record_progress=True,
        record_server_state=True,
        window_connection_limit=2,
    )
    scenario = make_scenario(scale, delay=0.5, trace=trace, **scenario_kwargs)
    result = simulate_scenario(scenario)

    print(f"=== {label} ===")
    for name in sorted(result.applications):
        app = result.app(name)
        print(f"  {name}: write time {app.write_time:.2f}s, "
              f"{app.window_collapses} window collapses")
    print()
    print(attribute_root_cause(result).describe())
    print()
    print(diagnose_flow_control(result).describe())
    stats = compare_window_traces(result)
    if stats:
        print()
        print("  traced connection windows (bytes):")
        for name, s in sorted(stats.items()):
            print(f"    {name}: mean {s.mean:.0f}, min {s.minimum:.0f}, "
                  f"time near floor {s.collapse_fraction:.2f}")
    print()


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "reduced"
    diagnose("HDD backend, sync ON (Incast-prone)", scale,
             device="hdd", sync_mode="sync-on")
    diagnose("null-aio backend (nothing saturates)", scale,
             device="hdd", sync_mode="null-aio")
    print(
        "With the HDD the dominant cause is the backend device plus the\n"
        "flow-control breakdown it triggers; with null-aio no component is\n"
        "saturated and the interference disappears — the paper's central point\n"
        "that interference arises from the interplay of components, not from\n"
        "the network alone."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
