#!/usr/bin/env python
"""Compare interference mitigations on one contended scenario.

The related work the paper surveys proposes mitigations that each attack one
point of contention (dedicated I/O writers, source throttling, server
partitioning, server-side coordination).  This example evaluates them on the
same baseline — two applications writing contiguously to HDDs with sync ON —
and prints the trade-off the paper insists on: interference reduction versus
the cost to interference-free performance.
"""

from __future__ import annotations

import sys

from repro import units
from repro.config.presets import make_scenario
from repro.core.reporting import format_table
from repro.mitigation import (
    DedicatedWriters,
    ServerPartitioning,
    ServerSideCoordination,
    SourceRateLimit,
    evaluate_mitigation,
)


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "reduced"
    scenario = make_scenario(scale, device="hdd", sync_mode="sync-on")
    deltas = [-1.5, 0.0, 1.5]

    mitigations = [
        DedicatedWriters(writers_per_node=1),
        SourceRateLimit(node_bw=120 * units.MiB),
        ServerPartitioning(),
        ServerSideCoordination(),
    ]

    rows = []
    for mitigation in mitigations:
        outcome = evaluate_mitigation(mitigation, scenario, deltas=deltas)
        rows.append(
            [
                mitigation.name,
                round(outcome.baseline_peak_if, 2),
                round(outcome.mitigated_peak_if, 2),
                f"{outcome.alone_cost * 100:+.0f}%",
                "yes" if outcome.worth_it() else "no",
            ]
        )
        print(f"evaluated {mitigation.name}: {mitigation.describe()}")

    print()
    print(
        format_table(
            ["mitigation", "peak IF (baseline)", "peak IF (mitigated)",
             "alone-time cost", "worth it?"],
            rows,
            title="Mitigation comparison (HDD backend, sync ON, contiguous writes)",
        )
    )
    print()
    print(
        "The paper's warning applies: a mitigation that removes interference\n"
        "while degrading single-application performance (a large 'alone-time\n"
        "cost') has not actually solved the problem."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
