#!/usr/bin/env python
"""Lossy Ethernet/TCP versus a lossless (InfiniBand-like) fabric.

The paper traces the unfair interference of its HDD/sync-ON experiments back
to a flow-control breakdown: the servers' receive buffers fill up, client
bursts are dropped, and the TCP windows of the application that arrived
second collapse (the Incast problem).  Its future work asks how the findings
transfer to "other types of network (e.g., InfiniBand)".

This example answers that question inside the simulator: it runs the same
contended scenario over

* the paper's 10G Ethernet with a TCP-like transport, and
* a credit-based, lossless fabric (``network="infiniband"``),

and compares the Δ-graphs.  On the lossless fabric the window collapses and
the unfairness disappear — but the ~2x slowdown of sharing a slow backend
remains, which is exactly the paper's point: flow control explains the
*pathological* part of the interference, not the interference itself.

Run with::

    python examples/transport_comparison.py            # reduced scale
    python examples/transport_comparison.py tiny       # faster
"""

from __future__ import annotations

import sys

from repro.analysis.asciiplot import plot_delta_sweep
from repro.core.experiment import TwoApplicationExperiment
from repro.core.reporting import format_table


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "reduced"

    rows = []
    sweeps = {}
    for network, label in (("10g", "10G Ethernet + TCP"),
                           ("infiniband", "lossless fabric")):
        experiment = TwoApplicationExperiment(
            scale,
            device="hdd",
            sync_mode="sync-on",
            pattern="contiguous",
            network=network,
        )
        sweep = experiment.run_sweep(n_points=7, label=label)
        sweeps[label] = sweep
        rows.append(
            [
                label,
                round(experiment.alone_time(), 2),
                round(sweep.peak_interference_factor(), 2),
                round(sweep.asymmetry_index(), 3),
                sweep.total_collapses(),
            ]
        )
        print(f"ran {label}")

    print()
    print(
        format_table(
            ["network", "alone time (s)", "peak IF", "asymmetry", "window collapses"],
            rows,
            title="Transport comparison (HDD backend, sync ON, contiguous writes)",
        )
    )
    print()
    for label, sweep in sweeps.items():
        print(plot_delta_sweep(sweep, title=f"Δ-graph — {label}"))
        print()

    print(
        "Reading: the lossless fabric removes the window collapses and the\n"
        "first-application advantage, but both applications still pay the\n"
        "~2x cost of sharing the same spinning disks — interference has a\n"
        "flow-control component *and* a resource-sharing component."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
