#!/usr/bin/env python
"""Interference as the number of concurrent applications grows.

The paper motivates its study with the observation that larger machines are
shared by more applications at the same time.  Its experiments stop at two
applications; this example uses the same simulator to ask the natural next
question: how does the slowdown evolve with 1, 2, 3, 4 identical applications
writing at once — with and without partitioning the servers between them?

Run with::

    python examples/many_applications.py            # reduced scale
    python examples/many_applications.py tiny       # faster
"""

from __future__ import annotations

import sys

from repro.config.presets import make_multi_app_scenario, make_single_app_scenario
from repro.core.reporting import format_table
from repro.model.simulator import simulate_scenario


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "reduced"
    device, sync = "hdd", "sync-on"

    alone = simulate_scenario(
        make_single_app_scenario(scale, device=device, sync_mode=sync)
    ).write_time("A")
    print(f"interference-free write time: {alone:.2f} s")
    print()

    rows = []
    for n_apps in (1, 2, 3, 4):
        shared = simulate_scenario(
            make_multi_app_scenario(scale, n_apps=n_apps, device=device, sync_mode=sync)
        )
        worst_shared = max(
            shared.write_time(app) for app in shared.applications
        )
        partitioned_row = "-"
        if n_apps > 1:
            partitioned = simulate_scenario(
                make_multi_app_scenario(
                    scale, n_apps=n_apps, device=device, sync_mode=sync,
                    partition_servers=True,
                )
            )
            worst_partitioned = max(
                partitioned.write_time(app) for app in partitioned.applications
            )
            partitioned_row = f"{worst_partitioned / alone:.2f}"
        rows.append(
            [
                n_apps,
                round(worst_shared, 2),
                f"{worst_shared / alone:.2f}",
                partitioned_row,
                shared.total_window_collapses(),
            ]
        )
        print(f"simulated {n_apps} concurrent application(s)")

    print()
    print(
        format_table(
            ["applications", "worst write time (s)", "slowdown (shared servers)",
             "slowdown (partitioned)", "window collapses"],
            rows,
            title=f"Concurrent applications on one deployment ({device}, {sync})",
        )
    )
    print()
    print(
        "Reading: with shared servers the slowdown tracks the number of\n"
        "applications (plus flow-control pathologies at higher client counts),\n"
        "while partitioning caps the interference at the price of giving each\n"
        "application a smaller slice of the machine — the same trade-off the\n"
        "paper demonstrates for two applications in its Figure 7."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
