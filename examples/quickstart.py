#!/usr/bin/env python
"""Quickstart: measure cross-application I/O interference with the simulator.

This example reproduces, in miniature, the paper's core experiment:

1. build the canonical two-application scenario (two identical applications
   writing contiguously to a shared PVFS-like deployment with HDDs and
   synchronization enabled),
2. measure the interference-free baseline,
3. run a Δ-graph sweep (vary the delay between the two applications' I/O
   bursts) and print the resulting write times, interference factors and
   an ASCII rendering of the Δ-graph.

Run it with::

    python examples/quickstart.py            # reduced scale, a few seconds
    python examples/quickstart.py tiny       # even faster
"""

from __future__ import annotations

import sys

from repro.analysis.asciiplot import plot_delta_sweep
from repro.core.experiment import TwoApplicationExperiment
from repro.core.prediction import compare_with_sweep
from repro.core.reporting import format_delta_sweep


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "reduced"

    experiment = TwoApplicationExperiment(
        scale,
        device="hdd",
        sync_mode="sync-on",
        pattern="contiguous",
    )
    print(experiment.describe())
    print()

    alone = experiment.alone_time()
    print(f"interference-free write time: {alone:.2f} s")

    head_to_head = experiment.run_point(delay=0.0)
    factor = head_to_head.write_time("A") / alone
    print(f"write time when both applications start together: "
          f"{head_to_head.write_time('A'):.2f} s  (interference factor {factor:.2f})")
    print()

    sweep = experiment.run_sweep(n_points=7, label="quickstart Δ-graph")
    print(format_delta_sweep(sweep))
    print()
    print(plot_delta_sweep(sweep, title="write time vs start delay"))
    print()

    comparison = compare_with_sweep(sweep)
    note = ("" if comparison.follows_fair_sharing(0.2) else
            "  (departs from plain fair sharing — flow-control effects at work)")
    print(
        "analytic sharing model: best-fitting share for the earlier application "
        f"{comparison.share_first:.2f}, worst deviation from the model "
        f"{comparison.max_relative_error:.0%}{note}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
