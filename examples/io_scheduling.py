#!/usr/bin/env python
"""Cross-application I/O scheduling: serialize the phases instead of interfering.

The scheduling line of related work (CALCioM, I/O-aware batch schedulers)
avoids interference by delaying one application's I/O phase until the other's
is over.  This example evaluates that policy on the paper's contended
scenario and prints the trade-off the paper warns about: the *write time*
always improves (each phase runs alone), but the *completion time* — waiting
included — may not, because the scheduler has only converted contention into
queueing.

Run with::

    python examples/io_scheduling.py            # reduced scale
    python examples/io_scheduling.py tiny       # faster
"""

from __future__ import annotations

import sys

from repro.config.presets import make_scenario
from repro.core.reporting import format_table
from repro.mitigation.scheduling import evaluate_coordination


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "reduced"
    scenario = make_scenario(scale, device="hdd", sync_mode="sync-on")

    outcome = evaluate_coordination(scenario, n_points=5)
    summary = outcome.summary()

    rows = []
    for point in outcome.points:
        rows.append(
            [
                round(point.delta, 2),
                round(point.interfering_write_times["B"], 2),
                round(point.coordinated_write_times["B"], 2),
                round(point.scheduler_wait["B"], 2),
                round(point.completion_change("B"), 2),
            ]
        )
    print(
        format_table(
            ["dt (s)", "write time interfering (s)", "write time coordinated (s)",
             "scheduler wait (s)", "completion change (s)"],
            rows,
            title="Application B: interfere vs. wait-then-run-alone",
        )
    )
    print()
    print(f"peak interference factor, interfering:  {summary['peak_if_interfering']:.2f}")
    print(f"peak interference factor, coordinated:  {summary['peak_if_coordinated']:.2f}")
    print(f"largest wait imposed by the scheduler:  {summary['max_scheduler_wait']:.2f} s")
    print(f"mean completion-time change:            {summary['mean_completion_change']:+.2f} s")
    print()
    print(
        "Reading: coordination removes the interference from the transfers\n"
        "themselves, but the delayed application still pays with waiting time;\n"
        "whether that is a win depends on how much the interference would have\n"
        "cost — which is exactly why the paper argues for understanding its\n"
        "root causes rather than treating any single symptom."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
