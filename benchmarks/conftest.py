"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at the
``reduced`` scale, times it with pytest-benchmark (one round — these are
experiment harnesses, not micro-benchmarks), prints the resulting rows, and
saves the full report under ``benchmarks/results/`` so EXPERIMENTS.md can be
assembled from the exact same data.

Set ``REPRO_BENCH_SCALE=paper`` to run the full paper-scale campaign instead
(much slower).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "reduced")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmark reports are stored."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Scale preset used for the benchmark runs."""
    return BENCH_SCALE
