"""Ablation benchmark: compare the interference mitigations on one scenario.

Not a figure of the paper, but the natural follow-up its Section V calls for:
each related-work mitigation targets one point of contention; here they are
evaluated on equal footing (same baseline scenario, same Δ sweep) so their
interference reduction can be weighed against their cost to interference-free
performance.
"""

from _bench_utils import run_and_report  # noqa: F401  (kept for symmetry)

from repro.core.reporting import format_table
from repro.config.presets import make_scenario
from repro.mitigation import (
    DedicatedWriters,
    ServerPartitioning,
    ServerSideCoordination,
    SourceRateLimit,
    evaluate_mitigation,
)
from repro import units


def test_ablation_mitigations(benchmark, results_dir, bench_scale):
    """Interference reduction vs single-application cost for each mitigation."""

    mitigations = [
        DedicatedWriters(writers_per_node=1),
        SourceRateLimit(node_bw=120 * units.MiB),
        ServerPartitioning(),
        ServerSideCoordination(),
    ]

    def runner():
        scenario = make_scenario(bench_scale, device="hdd", sync_mode="sync-on")
        outcomes = [
            evaluate_mitigation(m, scenario, deltas=[-1.0, 0.0, 1.0]) for m in mitigations
        ]
        return outcomes

    outcomes = benchmark.pedantic(runner, rounds=1, iterations=1)
    rows = []
    for outcome in outcomes:
        summary = outcome.summary()
        rows.append(
            [
                outcome.name,
                round(summary["peak_if_baseline"], 2),
                round(summary["peak_if_mitigated"], 2),
                round(summary["alone_cost"], 2),
                outcome.worth_it(),
            ]
        )
    report = format_table(
        ["mitigation", "peak IF before", "peak IF after", "alone cost", "worth it"],
        rows,
        title="[ablation] interference mitigations (HDD, sync ON)",
    )
    (results_dir / "ablation_mitigations.txt").write_text(report + "\n")
    print()
    print(report)

    by_name = {o.name: o for o in outcomes}
    # Partitioning and aggregation must reduce the peak interference factor.
    assert by_name["server-partitioning"].interference_reduction > 0.4
    assert by_name["dedicated-writers"].mitigated_peak_if <= (
        by_name["dedicated-writers"].baseline_peak_if + 0.1
    )
