"""Ablation benchmark: cross-application I/O scheduling (serialize vs interfere).

Evaluates the CALCioM-style coordination policy on the contended HDD/sync-ON
scenario: overlapping I/O phases are serialized by the scheduler, which
removes the interference from the transfers but converts it into waiting
time.  The benchmark records both sides of that trade-off.
"""

from _bench_utils import run_and_report  # noqa: F401  (kept for symmetry)

from repro.config.presets import make_scenario
from repro.core.reporting import format_table
from repro.mitigation.scheduling import evaluate_coordination


def test_ablation_scheduling(benchmark, results_dir, bench_scale):
    """Serialize overlapping I/O phases instead of letting them interfere."""

    def runner():
        scenario = make_scenario(bench_scale, device="hdd", sync_mode="sync-on")
        return evaluate_coordination(scenario, deltas=[-1.0, 0.0, 1.0])

    outcome = benchmark.pedantic(runner, rounds=1, iterations=1)

    rows = []
    for point in outcome.points:
        rows.append(
            [
                round(point.delta, 2),
                round(point.interfering_write_times["B"], 2),
                round(point.coordinated_write_times["B"], 2),
                round(point.scheduler_wait["B"], 2),
                round(point.completion_change("B"), 2),
            ]
        )
    summary = outcome.summary()
    report = format_table(
        ["dt (s)", "interfering write (s)", "coordinated write (s)",
         "scheduler wait (s)", "completion change (s)"],
        rows,
        title=(
            "[ablation] cross-application coordination (HDD, sync ON) — peak IF "
            f"{summary['peak_if_interfering']:.2f} -> {summary['peak_if_coordinated']:.2f}"
        ),
    )
    (results_dir / "ablation_scheduling.txt").write_text(report + "\n")
    print()
    print(report)

    # Coordination removes the write-time interference...
    assert summary["peak_if_coordinated"] < 1.3
    assert summary["peak_if_interfering"] > 1.6
    # ...at the cost of real waiting time for the delayed application.
    assert summary["max_scheduler_wait"] > 0.0
