"""Ablation benchmark: switch the Incast (flow-control) model off.

DESIGN.md attributes the unfair interference to the burst-escape gate and the
timeout collapses of the transport model.  This ablation re-runs the
HDD/sync-ON configuration with those mechanisms disabled (burst escape
probability 1.0, i.e. newcomers never lose their bursts) and checks that the
unfairness disappears while the plain ~2x device sharing remains — evidence
that the asymmetry really is produced by the flow-control model and not by
some other part of the simulator.
"""

import dataclasses

from repro.config.presets import make_scenario
from repro.core.delta import run_delta_sweep
from repro.core.reporting import format_table


def _with_incast_disabled(scenario):
    network = scenario.platform.network
    transport = dataclasses.replace(
        network.transport,
        burst_escape_probability=1.0,
        burst_reentry_probability=1.0,
        paced_timeout_hazard=0.0,
        collapse_penalty=0.0,
    )
    return scenario.with_platform(
        scenario.platform.with_network(dataclasses.replace(network, transport=transport))
    )


def test_ablation_incast_model(benchmark, results_dir, bench_scale):
    """Unfairness disappears when the flow-control breakdown is disabled."""

    def runner():
        base = make_scenario(bench_scale, device="hdd", sync_mode="sync-on")
        deltas = [-2.0, -1.0, 0.0, 1.0, 2.0]
        with_incast = run_delta_sweep(base, deltas, label="incast model on")
        without_incast = run_delta_sweep(
            _with_incast_disabled(base), deltas, label="incast model off"
        )
        return with_incast, without_incast

    with_incast, without_incast = benchmark.pedantic(runner, rounds=1, iterations=1)

    rows = [
        [
            "incast model on",
            round(with_incast.peak_interference_factor(), 2),
            round(with_incast.asymmetry_index(), 3),
            with_incast.total_collapses(),
        ],
        [
            "incast model off",
            round(without_incast.peak_interference_factor(), 2),
            round(without_incast.asymmetry_index(), 3),
            without_incast.total_collapses(),
        ],
    ]
    report = format_table(
        ["configuration", "peak IF", "asymmetry", "collapses"],
        rows,
        title="[ablation] flow-control (Incast) model on/off (HDD, sync ON)",
    )
    (results_dir / "ablation_incast_model.txt").write_text(report + "\n")
    print()
    print(report)

    # Without the flow-control breakdown the device sharing (~2x) remains but
    # the collapses and (most of) the unfairness are gone.
    assert without_incast.total_collapses() == 0
    assert with_incast.total_collapses() > 0
    assert without_incast.peak_interference_factor() > 1.7
    assert with_incast.asymmetry_index() > without_incast.asymmetry_index() - 0.05
