"""Benchmark: regenerate Figure 6 and Table II (number of storage servers)."""

from _bench_utils import run_and_report

from repro.experiments import figure6


def test_figure6_server_scaling(benchmark, results_dir, bench_scale):
    """Throughput scaling and interference vs server count (Figure 6, Table II)."""

    def runner():
        return figure6.run(scale=bench_scale, n_points=5)

    result = run_and_report(benchmark, results_dir, runner, "figure6")

    scaling = {row["servers"]: row for row in result.table("figure6a_scaling")}
    table2 = {row["servers"]: row for row in result.table("table2_interference")}

    counts = sorted(scaling)
    # Figure 6(a): more servers -> more aggregate throughput (monotone, within noise).
    assert scaling[counts[-1]]["max_throughput_GBps"] > scaling[counts[0]]["max_throughput_GBps"]
    # Table II: the peak interference factor stays roughly constant (~2).
    factors = [table2[c]["peak_interference_factor"] for c in counts]
    assert all(1.6 <= f <= 2.6 for f in factors)
    assert max(factors) - min(factors) < 0.7
