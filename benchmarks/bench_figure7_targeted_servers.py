"""Benchmark: regenerate Figure 7 (shared vs partitioned servers)."""

from _bench_utils import run_and_report

from repro.experiments import figure7


def test_figure7_targeted_servers(benchmark, results_dir, bench_scale):
    """12 shared servers vs 6+6 partitioned servers (paper Figure 7)."""

    def runner():
        return figure7.run(scale=bench_scale, n_points=7)

    result = run_and_report(benchmark, results_dir, runner, "figure7")
    rows = {row["device"]: row for row in result.table("figure7_summary")}

    for device in ("hdd", "ram"):
        row = rows[device]
        # Partitioning costs interference-free performance (half the servers)...
        assert row["partitioned_alone_s"] > row["shared_alone_s"]
        # ...but removes the interference entirely.
        assert row["partitioned_peak_IF"] < 1.25
        assert row["shared_peak_IF"] > 1.7
    # For the HDD case the contended shared peak exceeds the partitioned peak.
    assert rows["hdd"]["shared_peak_time_s"] > rows["hdd"]["partitioned_peak_time_s"] * 0.95
