"""Benchmark: regenerate Figure 10 (TCP window evolution / Incast)."""

from _bench_utils import run_and_report

from repro.experiments import figure10


def test_figure10_tcp_window(benchmark, results_dir, bench_scale):
    """Window traces of an independent vs an interfering run (paper Figure 10)."""

    def runner():
        return figure10.run(scale=bench_scale)

    result = run_and_report(benchmark, results_dir, runner, "figure10")
    rows = {row["run"]: row for row in result.table("figure10_windows")}

    # Under contention the traced windows spend time near the floor and the
    # run accumulates many timeout collapses; alone it does not.
    assert rows["interfering"]["window_collapses"] > 50
    assert rows["alone"]["window_collapses"] < rows["interfering"]["window_collapses"] / 5
    assert rows["interfering"]["time_near_floor"] >= rows["alone"]["time_near_floor"]
    assert result.metric("incast_detected") == 1.0
