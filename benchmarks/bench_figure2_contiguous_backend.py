"""Benchmark: regenerate Figure 2 (contiguous pattern, backend devices)."""

from _bench_utils import run_and_report

from repro.experiments import figure2


def test_figure2_contiguous_backend(benchmark, results_dir, bench_scale):
    """Δ-graphs per backend device and sync mode (paper Figure 2)."""

    def runner():
        return figure2.run(scale=bench_scale, n_points=7)

    result = run_and_report(benchmark, results_dir, runner, "figure2")

    # Every real backend peaks near (or above) a 2x slowdown.
    for device in ("hdd", "ssd", "ram"):
        assert result.sweep(f"{device}.sync-on").peak_interference_factor() > 1.7
        assert result.sweep(f"{device}.sync-off").peak_interference_factor() > 1.7
    # Only the HDD/sync-ON configuration triggers Incast (asymmetry + collapses).
    hdd_on = result.sweep("hdd.sync-on")
    assert hdd_on.total_collapses() > 0
    assert hdd_on.asymmetry_index() > 0.05
    # Null-aio shows (almost) no interference.
    assert result.sweep("null-aio").is_flat(0.2)
