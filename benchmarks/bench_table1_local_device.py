"""Benchmark: regenerate Table I (local device-level interference)."""

from _bench_utils import run_and_report

from repro.experiments import table1


def test_table1_local_device(benchmark, results_dir, bench_scale):
    """Alone vs interfering local writes on HDD/SSD/RAM (paper Table I)."""

    def runner():
        return table1.run(scale=bench_scale)

    result = run_and_report(benchmark, results_dir, runner, "table1")
    rows = {row["device"]: row for row in result.table("table1")}
    # Paper: slowdowns 2.49 / 1.96 / 1.58 — the ordering and rough bands must hold.
    assert rows["HDD"]["slowdown"] > rows["SSD"]["slowdown"] > rows["RAM"]["slowdown"]
    assert 2.2 <= rows["HDD"]["slowdown"] <= 2.8
    assert 1.7 <= rows["SSD"]["slowdown"] <= 2.2
    assert 1.4 <= rows["RAM"]["slowdown"] <= 1.8
