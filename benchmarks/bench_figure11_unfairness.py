"""Benchmark: regenerate Figure 11 (unfairness between first and second app)."""

from _bench_utils import run_and_report

from repro.experiments import figure11


def test_figure11_unfairness(benchmark, results_dir, bench_scale):
    """Window size and progress per application with a staggered start (Figure 11)."""

    def runner():
        return figure11.run(scale=bench_scale)

    result = run_and_report(benchmark, results_dir, runner, "figure11")
    rows = {row["application"]: row for row in result.table("figure11_summary")}

    first, second = rows["A"], rows["B"]
    # The second application suffers far more window collapses and is slowed
    # down from an earlier point of its transfer than the first one.
    assert second["window_collapses"] > first["window_collapses"]
    assert second["progress_at_slowdown"] <= first["progress_at_slowdown"] + 0.05
