"""Benchmark: regenerate Figure 12 (Incast appearance vs client count)."""

from _bench_utils import run_and_report

from repro.experiments import figure12


def test_figure12_client_count(benchmark, results_dir, bench_scale):
    """Δ-graphs for growing client counts (paper Figure 12)."""

    def runner():
        return figure12.run(scale=bench_scale, n_points=5)

    result = run_and_report(benchmark, results_dir, runner, "figure12")
    rows = sorted(result.table("figure12_summary"), key=lambda r: r["total_clients"])

    # Window collapses (the Incast signature) appear only above a client-count
    # threshold and grow with the number of clients.
    assert rows[0]["collapses"] < rows[-1]["collapses"]
    assert rows[-1]["collapses"] > 100
    # The unfairness (positive asymmetry) is present at the largest count.
    assert rows[-1]["asymmetry"] > -0.02
