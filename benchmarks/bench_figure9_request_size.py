"""Benchmark: regenerate Figure 9 (request size, strided pattern)."""

from _bench_utils import run_and_report

from repro.experiments import figure9


def test_figure9_request_size(benchmark, results_dir, bench_scale):
    """Request-size sweep of the strided workload (paper Figure 9)."""

    def runner():
        return figure9.run(scale=bench_scale, n_points=3)

    result = run_and_report(benchmark, results_dir, runner, "figure9")
    rows = {(r["sync"], r["request"]): r for r in result.table("figure9_summary")}

    # Small requests involve a single server each...
    assert rows[("Sync OFF", "64 KiB")]["servers_per_request"] == 1
    assert rows[("Sync OFF", "512 KiB")]["servers_per_request"] == 8
    # ...but are far from optimal for a single application (the paper's warning).
    assert (
        rows[("Sync OFF", "64 KiB")]["alone_s"]
        > 1.5 * rows[("Sync OFF", "256 KiB")]["alone_s"]
    )
    # Interference with small requests is no worse than with large ones (sync OFF).
    assert (
        rows[("Sync OFF", "64 KiB")]["peak_IF"]
        <= rows[("Sync OFF", "512 KiB")]["peak_IF"] + 0.2
    )
