"""Benchmark: fixed vs adaptive stepping on a quiescent-heavy Δ-sweep.

The Δ-graphs of the paper spend most of their sweep range at delays much
larger than one application's write time — runs whose middle is a long dead
interval in which every connection is idle and the fluid model has nothing to
do.  The adaptive stepping policy collapses those intervals into single
jumps; this benchmark measures how many model steps (and how much wall time)
that saves, and asserts the headline results stay within the policy's
tolerance.

The full report is persisted as ``benchmarks/results/adaptive_stepping.json``
(uploaded as a CI artifact) so future PRs can track the step-count ratio.
"""

import json
import time

from repro.config.control import SteppingPolicy
from repro.config.presets import make_scenario
from repro.model.simulator import simulate_scenario

TOLERANCE = 0.05

#: Delays as multiples of the alone write time; the large ones dominate the
#: paper's sweeps (whose Δ axes extend to many multiples of one write time)
#: and are almost entirely quiescent lead-in.
DELTA_FACTORS = [-12.0, -6.0, 0.0, 6.0, 12.0]


def _sweep(scale: str, policy=None) -> dict:
    """Run the Δ-points and return per-delta steps/write times/wall time."""
    alone = simulate_scenario(
        make_scenario(scale, stepping=policy).with_applications(
            make_scenario(scale).applications[:1]
        )
    )
    alone_time = alone.applications["A"].end_time - alone.applications["A"].start_time
    points = {}
    wall = 0.0
    for factor in DELTA_FACTORS:
        delta = factor * alone_time
        scenario = make_scenario(scale, delay=delta, stepping=policy)
        t0 = time.perf_counter()
        result = simulate_scenario(scenario)
        wall += time.perf_counter() - t0
        points[f"{factor:+.0f}T"] = {
            "delta_s": round(delta, 6),
            "n_steps": result.n_steps,
            "write_times": {
                name: app.end_time - app.start_time
                for name, app in result.applications.items()
            },
        }
    return {
        "alone_time_s": alone_time,
        "points": points,
        "total_steps": sum(p["n_steps"] for p in points.values()),
        "wall_s": round(wall, 3),
    }


def test_adaptive_vs_fixed_quiescent_sweep(benchmark, results_dir, bench_scale):
    """Adaptive stepping must halve the step count on the quiescent sweep."""
    fixed = _sweep(bench_scale)
    adaptive = benchmark.pedantic(
        lambda: _sweep(bench_scale, SteppingPolicy.adaptive(tolerance=TOLERANCE)),
        rounds=1,
        iterations=1,
    )

    step_ratio = fixed["total_steps"] / max(adaptive["total_steps"], 1)
    wall_speedup = fixed["wall_s"] / adaptive["wall_s"] if adaptive["wall_s"] else 1.0
    report = {
        "scale": bench_scale,
        "tolerance": TOLERANCE,
        "fixed": fixed,
        "adaptive": adaptive,
        "step_ratio": round(step_ratio, 2),
        "wall_speedup": round(wall_speedup, 2),
    }
    (results_dir / "adaptive_stepping.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    print()
    print(
        f"adaptive stepping ({bench_scale}): {fixed['total_steps']} -> "
        f"{adaptive['total_steps']} steps ({step_ratio:.1f}x fewer), "
        f"wall {fixed['wall_s']:.2f}s -> {adaptive['wall_s']:.2f}s "
        f"({wall_speedup:.2f}x)"
    )

    benchmark.extra_info["step_ratio"] = round(step_ratio, 2)
    benchmark.extra_info["wall_speedup"] = round(wall_speedup, 2)

    # The acceptance bar: >= 2x fewer model steps on the quiescent-heavy
    # sweep, with every write time inside the configured tolerance.
    assert step_ratio >= 2.0
    for key, fixed_point in fixed["points"].items():
        for app, expected in fixed_point["write_times"].items():
            got = adaptive["points"][key]["write_times"][app]
            assert abs(got - expected) <= TOLERANCE * expected
