"""Benchmark: regenerate Figure 8 (stripe size, strided pattern)."""

from _bench_utils import run_and_report

from repro.experiments import figure8


def test_figure8_stripe_size(benchmark, results_dir, bench_scale):
    """Stripe-size sweep of the strided workload (paper Figure 8)."""

    def runner():
        return figure8.run(scale=bench_scale, n_points=3)

    result = run_and_report(benchmark, results_dir, runner, "figure8")
    rows = {(r["sync"], r["stripe"]): r for r in result.table("figure8_summary")}

    # Larger stripes are faster for both sync modes.
    for sync in ("Sync ON", "Sync OFF"):
        assert rows[(sync, "256 KiB")]["alone_s"] < rows[(sync, "64 KiB")]["alone_s"]
    # With sync OFF the interference shrinks as requests touch fewer servers;
    # with sync ON the disk keeps causing interference.
    assert (
        rows[("Sync OFF", "256 KiB")]["peak_IF"]
        < rows[("Sync OFF", "64 KiB")]["peak_IF"]
    )
    assert rows[("Sync ON", "256 KiB")]["peak_IF"] > 1.4
