"""Benchmark: serial vs parallel campaign wall time at the tiny scale.

Records both times (and the resulting speedup) under
``benchmarks/results/campaign_parallel.txt`` so future PRs can track how
much the ``--jobs`` fan-out buys on the runner's hardware.  On a
single-core box the speedup is ~1.0 by construction; the byte-identical
output invariant is what the test asserts either way.
"""

import time

from repro.analysis.campaign import campaign_to_markdown, run_campaign

JOBS = 4


def test_campaign_parallel_speedup(benchmark, results_dir):
    """Parallel (--jobs 4) tiny campaign, compared against a serial pass."""
    t0 = time.perf_counter()
    serial = run_campaign(scale="tiny", quick=True)
    serial_s = time.perf_counter() - t0

    parallel = benchmark.pedantic(
        lambda: run_campaign(scale="tiny", quick=True, jobs=JOBS),
        rounds=1, iterations=1,
    )
    parallel_s = benchmark.stats.stats.mean

    speedup = serial_s / parallel_s if parallel_s else float("nan")
    benchmark.extra_info["serial_s"] = round(serial_s, 2)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 2)
    benchmark.extra_info["jobs"] = JOBS
    benchmark.extra_info["speedup"] = round(speedup, 2)

    report = (
        f"campaign --scale tiny --quick: serial {serial_s:.1f}s, "
        f"--jobs {JOBS} {parallel_s:.1f}s, speedup {speedup:.2f}x\n"
    )
    (results_dir / "campaign_parallel.txt").write_text(report)
    print()
    print(report, end="")

    # Parallelism must never change the science: byte-identical report.
    assert campaign_to_markdown(parallel) == campaign_to_markdown(serial)
    assert parallel.n_experiments == serial.n_experiments == 12
