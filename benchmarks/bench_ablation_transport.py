"""Ablation benchmark: TCP-like transport vs. a lossless credit-based fabric.

The paper's future work asks whether its findings carry over to other network
types (e.g. InfiniBand).  This ablation runs the worst-behaved configuration
(HDD backend, sync ON, contiguous writes) over both transports and records
that the lossless fabric removes the flow-control pathologies (collapses,
unfairness) while the resource-sharing part of the interference (~2x) stays.
"""

from _bench_utils import run_and_report  # noqa: F401  (kept for symmetry)

from repro.core.experiment import TwoApplicationExperiment
from repro.core.reporting import format_table


def test_ablation_transport(benchmark, results_dir, bench_scale):
    """Ethernet/TCP vs lossless fabric on the HDD/sync-ON scenario."""

    def runner():
        sweeps = {}
        for network in ("10g", "infiniband"):
            experiment = TwoApplicationExperiment(
                bench_scale, device="hdd", sync_mode="sync-on", pattern="contiguous",
                network=network,
            )
            sweeps[network] = (
                experiment.alone_time(),
                experiment.run_sweep(n_points=5, label=network),
            )
        return sweeps

    sweeps = benchmark.pedantic(runner, rounds=1, iterations=1)

    rows = []
    for network, (alone, sweep) in sweeps.items():
        rows.append(
            [
                network,
                round(alone, 2),
                round(sweep.peak_interference_factor(), 2),
                round(sweep.asymmetry_index(), 3),
                sweep.total_collapses(),
            ]
        )
    report = format_table(
        ["network", "alone time (s)", "peak IF", "asymmetry", "collapses"],
        rows,
        title="[ablation] TCP-like vs lossless transport (HDD, sync ON)",
    )
    (results_dir / "ablation_transport.txt").write_text(report + "\n")
    print()
    print(report)

    _, tcp_sweep = sweeps["10g"]
    _, lossless_sweep = sweeps["infiniband"]
    # The lossless fabric removes the Incast signature entirely...
    assert lossless_sweep.total_collapses() == 0
    assert tcp_sweep.total_collapses() > 0
    # ...but the device-sharing interference remains around 2x.
    assert lossless_sweep.peak_interference_factor() > 1.7
    assert abs(lossless_sweep.asymmetry_index()) < max(tcp_sweep.asymmetry_index(), 0.05)
