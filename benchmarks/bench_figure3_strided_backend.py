"""Benchmark: regenerate Figure 3 (strided pattern, backend devices)."""

from _bench_utils import run_and_report

from repro.experiments import figure3


def test_figure3_strided_backend(benchmark, results_dir, bench_scale):
    """Δ-graphs for the strided pattern per backend device (paper Figure 3)."""

    def runner():
        return figure3.run(scale=bench_scale, n_points=3)

    result = run_and_report(benchmark, results_dir, runner, "figure3")
    rows = {(r["device"], r["sync"]): r for r in result.table("figure3_summary")}

    # Sync ON: the HDD is an order of magnitude slower than SSD/RAM and
    # suffers at least as much interference.
    assert rows[("hdd", "Sync ON")]["alone_s"] > 4 * rows[("ram", "Sync ON")]["alone_s"]
    assert rows[("hdd", "Sync ON")]["peak_IF"] >= rows[("ram", "Sync ON")]["peak_IF"]
    # Sync OFF: the devices behave alike (within 20%).
    off_times = [rows[(d, "Sync OFF")]["alone_s"] for d in ("hdd", "ssd", "ram")]
    assert max(off_times) / min(off_times) < 1.25
