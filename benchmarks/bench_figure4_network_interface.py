"""Benchmark: regenerate Figure 4 (writers per node / network interface)."""

from _bench_utils import run_and_report

from repro.experiments import figure4


def test_figure4_network_interface(benchmark, results_dir, bench_scale):
    """All cores writing vs one dedicated writer per node (paper Figure 4)."""

    def runner():
        return figure4.run(scale=bench_scale, n_points=7)

    result = run_and_report(benchmark, results_dir, runner, "figure4")
    all_cores = result.sweep("all_cores")
    one_writer = result.sweep("one_writer_per_node")

    # Fewer writers per node remove the Incast collapses and the unfairness.
    assert one_writer.total_collapses() < all_cores.total_collapses()
    assert abs(one_writer.asymmetry_index()) < max(all_cores.asymmetry_index(), 0.05)
    assert one_writer.peak_interference_factor() <= all_cores.peak_interference_factor() + 0.1
