"""Ablation benchmark: sensitivity of the results to the fluid-model step size.

DESIGN.md's model section advances the fluid model with a fixed step chosen
automatically from the expected run length.  This ablation re-runs the same
contended configuration with explicit steps spanning a factor of ~6 and
checks that the headline quantities (write time at dt=0, interference factor)
move by only a few percent — i.e. the reproduction results are not an
artifact of the default step choice.
"""

from _bench_utils import run_and_report  # noqa: F401  (kept for symmetry)

from repro.config.presets import make_scenario
from repro.config.scenario import SimulationControl
from repro.core.reporting import format_table
from repro.model.simulator import simulate_scenario


STEPS_MS = (4.0, 10.0, 25.0)


def test_ablation_step_size(benchmark, results_dir, bench_scale):
    """Write time at dt=0 for several fluid-model step sizes."""

    def runner():
        times = {}
        for step_ms in STEPS_MS:
            scenario = make_scenario(
                bench_scale, device="hdd", sync_mode="sync-off", delay=0.0,
                step=step_ms * 1e-3,
            )
            alone = scenario.with_applications(scenario.applications[:1])
            alone_time = simulate_scenario(alone).write_time("A")
            contended = simulate_scenario(scenario)
            times[step_ms] = (alone_time, contended.write_time("A"))
        return times

    times = benchmark.pedantic(runner, rounds=1, iterations=1)

    rows = []
    for step_ms, (alone, contended) in sorted(times.items()):
        rows.append([step_ms, round(alone, 3), round(contended, 3),
                     round(contended / alone, 2)])
    report = format_table(
        ["step (ms)", "alone (s)", "contended dt=0 (s)", "interference factor"],
        rows,
        title="[ablation] fluid-model step-size sensitivity (HDD, sync OFF)",
    )
    (results_dir / "ablation_step_size.txt").write_text(report + "\n")
    print()
    print(report)

    contended_times = [c for (_a, c) in times.values()]
    spread = (max(contended_times) - min(contended_times)) / min(contended_times)
    factors = [c / a for (a, c) in times.values()]
    # The step size must not change the story: write times within ~10%, and
    # the interference factor stays around 2 for every step.
    assert spread < 0.10
    assert all(1.6 < f < 2.4 for f in factors)


def test_step_resolution_defaults():
    """The automatic step choice respects its configured bounds."""
    control = SimulationControl()
    assert control.min_step <= control.resolve_step(10.0) <= control.max_step
    assert control.resolve_step(0.0) == control.min_step
    explicit = SimulationControl(step=0.004)
    assert explicit.resolve_step(1000.0) == 0.004
