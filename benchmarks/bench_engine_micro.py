"""Micro-benchmarks of the simulator itself (not a paper figure).

These keep an eye on the cost of the building blocks the experiment harness
leans on: the event engine, the striping arithmetic, one model step, and a
complete tiny scenario.  They use pytest-benchmark's normal statistics
(multiple rounds) because they are true micro-benchmarks.
"""

import numpy as np

from repro import units
from repro.config.presets import make_scenario
from repro.model.simulator import IOPathSimulator, simulate_scenario
from repro.pfs.striping import extent_to_server_bytes
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority


def test_engine_event_throughput(benchmark):
    """Schedule and execute 10k events."""

    def runner():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i * 1e-3, lambda s: None, priority=EventPriority.NORMAL)
        sim.run()
        return sim.events_processed

    assert benchmark(runner) == 10_000


def test_striping_arithmetic(benchmark):
    """Split a 64 MiB extent into per-server bytes, 200 times."""
    servers = tuple(range(12))

    def runner():
        total = 0.0
        for rank in range(200):
            out = extent_to_server_bytes(
                rank * 64 * units.MiB, 64 * units.MiB, 64 * units.KiB, servers, 12
            )
            total += out.sum()
        return total

    result = benchmark(runner)
    assert result == 200 * 64 * units.MiB


def test_single_model_step(benchmark):
    """One vectorized step of the reduced-scale model."""
    scenario = make_scenario("reduced", device="hdd", sync_mode="sync-on")
    sim_runner = IOPathSimulator(scenario)
    from repro.sim.engine import Simulator as Engine

    engine = Engine(start_time=0.0)
    sim_runner.stepper.start_application(engine, 0)
    sim_runner.stepper.start_application(engine, 1)
    dt = sim_runner.step_size

    def runner():
        sim_runner.stepper.step(engine, dt)
        engine._now += dt  # advance manually; completion is irrelevant here
        return True

    assert benchmark(runner)


def test_tiny_scenario_end_to_end(benchmark):
    """A complete tiny-scale contended simulation."""
    scenario = make_scenario("tiny", device="hdd", sync_mode="sync-on")

    def runner():
        return simulate_scenario(scenario).write_time("A")

    assert benchmark(runner) > 0
