"""Stepping-kernel throughput benchmark (the perf trajectory's data source).

Runs the canonical scenario set from :mod:`repro.perf.harness` — the same
measurement ``repro-io perf`` makes — at the scale selected by
``REPRO_BENCH_SCALE`` (default ``reduced``; CI smoke uses ``tiny``) and
persists the schema-validated document under ``benchmarks/results/`` so the
numbers travel with the other benchmark artifacts.
"""

import json

from _bench_utils import DEFAULT_ROUNDS

from repro.perf import run_perf, validate_bench_document
from repro.perf.compare import format_summary


def test_stepper_kernel_throughput(benchmark, results_dir, bench_scale):
    """Measure steps/sec of the canonical scenario set; persist the document."""
    scale = bench_scale if bench_scale in ("tiny", "reduced") else "reduced"
    repeats = max(DEFAULT_ROUNDS, 3)

    document = benchmark.pedantic(
        lambda: run_perf(scale=scale, repeats=repeats), rounds=1, iterations=1
    )
    validate_bench_document(document)
    (results_dir / "stepper_kernel.json").write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    print()
    print(format_summary(document))

    for key, entry in document["scenarios"].items():
        assert entry["steps_per_sec"] > 0, key
    # The active-phase scenarios must measurably beat the recorded seed
    # kernel on comparable hardware; allow generous head-room for CI machines
    # and noisy neighbours — the committed BENCH_stepper.json records the
    # authoritative speedup, and tests/test_perf.py pins it.
    speedup = document.get("speedup", {})
    for key, value in speedup.items():
        assert value > 0.5, f"{key} unexpectedly slower than half the reference"
