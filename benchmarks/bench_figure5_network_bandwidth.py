"""Benchmark: regenerate Figure 5 (10G vs 1G storage network)."""

from _bench_utils import run_and_report

from repro.experiments import figure5


def test_figure5_network_bandwidth(benchmark, results_dir, bench_scale):
    """Throttling the network can remove interference (paper Figure 5)."""

    def runner():
        return figure5.run(scale=bench_scale, n_points=7)

    result = run_and_report(benchmark, results_dir, runner, "figure5")

    ten_on = result.sweep("10g.sync-on")
    one_on = result.sweep("1g.sync-on")
    ten_off = result.sweep("10g.sync-off")
    one_off = result.sweep("1g.sync-off")

    # Sync ON: the disk is the bottleneck, so the peak write times are close
    # for both networks, but only the 10G sweep is unfair/asymmetric.
    peak_10 = max(ten_on.write_times(a).max() for a in ten_on.applications)
    peak_1 = max(one_on.write_times(a).max() for a in one_on.applications)
    assert abs(peak_10 - peak_1) / peak_10 < 0.25
    assert ten_on.total_collapses() > one_on.total_collapses()
    assert ten_on.asymmetry_index() > one_on.asymmetry_index() - 0.02

    # Sync OFF: the throttled network flattens the delta-graph.
    assert one_off.flatness_index() < 0.4
    assert ten_off.peak_interference_factor() > one_off.peak_interference_factor() + 0.3
