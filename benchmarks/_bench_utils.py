"""Helpers shared by the benchmark modules (kept out of conftest so they can
be imported explicitly)."""

from __future__ import annotations

import os
import time
from pathlib import Path

#: Repeats used by run_and_report when the caller does not override them.
#: The experiment harnesses are heavy, so the default stays at 1; CI and
#: local runs can raise it with REPRO_BENCH_ROUNDS for tighter numbers.
DEFAULT_ROUNDS = max(int(os.environ.get("REPRO_BENCH_ROUNDS", "1")), 1)


def run_and_report(benchmark, results_dir: Path, runner, name: str, rounds: int | None = None):
    """Execute ``runner`` under pytest-benchmark and persist its report.

    The wall time recorded in the report is the *minimum* over ``rounds``
    repeats, measured with ``perf_counter_ns`` — a single round on the
    single-CPU container is too noisy to gate on, while the min of a few
    repeats converges on the undisturbed cost.  The returned value is the
    last round's result (every round runs the identical experiment).
    """
    rounds = DEFAULT_ROUNDS if rounds is None else max(int(rounds), 1)
    state = {"best_ns": None}

    def timed():
        start = time.perf_counter_ns()
        result = runner()
        elapsed = time.perf_counter_ns() - start
        if state["best_ns"] is None or elapsed < state["best_ns"]:
            state["best_ns"] = elapsed
        state["result"] = result
        return result

    # Each round is timed individually, so pytest-benchmark's own stats
    # (and the committed JSON artifact) see per-round times — the min they
    # report is the same min recorded below.
    benchmark.pedantic(timed, rounds=rounds, iterations=1)
    result = state["result"]
    report = result.report()
    timing = (
        f"[min of {rounds} round(s): {state['best_ns'] / 1e9:.3f}s "
        f"via perf_counter_ns]"
    )
    (results_dir / f"{name}.txt").write_text(report + "\n" + timing + "\n")
    print()
    print(report)
    print(timing)
    return result
