"""Helper shared by the benchmark modules (kept out of conftest so it can be
imported explicitly)."""

from __future__ import annotations

from pathlib import Path


def run_and_report(benchmark, results_dir: Path, runner, name: str):
    """Execute ``runner`` once under pytest-benchmark and persist its report."""
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    report = result.report()
    (results_dir / f"{name}.txt").write_text(report + "\n")
    print()
    print(report)
    return result
