"""Tests for the PVFS client, server, request records and deployment."""

import numpy as np
import pytest

from repro import units
from repro.config.filesystem import FileSystemConfig, SyncMode
from repro.config.server import ServerConfig
from repro.errors import ConfigurationError
from repro.pfs.client import PVFSClient
from repro.pfs.filesystem import PVFSDeployment
from repro.pfs.request import Fragment, WriteRequest
from repro.pfs.server import FLOW_BUFFER_BYTES, PVFSServer
from repro.storage import device_by_name

KIB = units.KiB
MIB = units.MiB


class TestRequestRecords:
    def test_fragment_validation(self):
        with pytest.raises(ConfigurationError):
            Fragment(request_id=0, server=0, nbytes=0, n_stripe_pieces=1)
        with pytest.raises(ConfigurationError):
            Fragment(request_id=0, server=0, nbytes=10, n_stripe_pieces=0)

    def test_request_consistency(self):
        frags = (
            Fragment(0, 0, 128 * KIB, 2),
            Fragment(0, 1, 128 * KIB, 2),
        )
        req = WriteRequest(0, "A", 3, offset=0, nbytes=256 * KIB, fragments=frags)
        assert req.is_consistent()
        assert req.n_servers_touched == 2
        assert req.bytes_by_server == {0: 128 * KIB, 1: 128 * KIB}

    def test_request_validation(self):
        with pytest.raises(ConfigurationError):
            WriteRequest(0, "A", -1, offset=0, nbytes=10)
        with pytest.raises(ConfigurationError):
            WriteRequest(0, "A", 0, offset=-1, nbytes=10)


class TestClient:
    def make_client(self, stripe=64 * KIB, servers=(0, 1, 2, 3), total=4):
        return PVFSClient("A", rank=0, stripe_size=stripe, servers=servers, n_servers_total=total)

    def test_build_request_fragments(self):
        client = self.make_client()
        req = client.build_request(offset=0, nbytes=256 * KIB)
        assert req.is_consistent()
        assert req.n_servers_touched == 4

    def test_submit_and_complete(self):
        client = self.make_client()
        req = client.submit(0, 128 * KIB)
        assert len(client.outstanding) == 1
        client.complete(req.request_id)
        assert len(client.outstanding) == 0
        assert len(client.completed) == 1
        with pytest.raises(KeyError):
            client.complete(req.request_id)

    def test_servers_touched_by(self):
        client = self.make_client()
        assert client.servers_touched_by(0, 64 * KIB) == (0,)
        assert client.servers_touched_by(64 * KIB, 64 * KIB) == (1,)
        assert len(client.servers_touched_by(0, 256 * KIB)) == 4

    def test_stripes_touched_by(self):
        client = self.make_client()
        assert client.stripes_touched_by(0, 256 * KIB) == 4
        assert client.stripes_touched_by(10, 10) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PVFSClient("A", rank=-1, stripe_size=64, servers=(0,), n_servers_total=1)
        with pytest.raises(ConfigurationError):
            PVFSClient("A", rank=0, stripe_size=0, servers=(0,), n_servers_total=1)


def make_server(sync_mode=SyncMode.SYNC_ON, device="hdd", **server_kwargs):
    return PVFSServer(
        server_id=0,
        config=ServerConfig(**server_kwargs),
        device=device_by_name(device),
        sync_mode=sync_mode,
        stripe_size=64 * KIB,
        server_nic_bw=1.25e9,
    )


class TestServer:
    def test_sync_on_drain_follows_device(self):
        hdd = make_server(SyncMode.SYNC_ON, "hdd")
        ram = make_server(SyncMode.SYNC_ON, "ram")
        assert hdd.drain_rate(32, 64 * KIB) < ram.drain_rate(32, 64 * KIB)

    def test_sync_off_hides_the_device(self):
        hdd_off = make_server(SyncMode.SYNC_OFF, "hdd")
        ram_off = make_server(SyncMode.SYNC_OFF, "ram")
        assert hdd_off.drain_rate(32, 64 * KIB) == pytest.approx(
            ram_off.drain_rate(32, 64 * KIB), rel=0.01
        )

    def test_null_aio_bypasses_ingest_limit(self):
        null = make_server(SyncMode.NULL_AIO)
        regular = make_server(SyncMode.SYNC_OFF)
        assert null.ingest_rate() > regular.ingest_rate()

    def test_small_fragments_are_op_bound(self):
        server = make_server(SyncMode.SYNC_OFF)
        small = server.drain_rate(32, 16 * KIB)
        large = server.drain_rate(32, 4 * MIB)
        assert small < large

    def test_processing_unit_bounds(self):
        server = make_server()
        assert server.processing_unit(16 * KIB) == 16 * KIB
        assert server.processing_unit(10 * MIB) == FLOW_BUFFER_BYTES

    def test_commit_accounting(self):
        server = make_server(SyncMode.SYNC_ON, "hdd")
        rate = server.drain_rate(8, 1 * MIB)
        server.commit(rate * 0.1, dt=0.1, n_streams=8, granularity=1 * MIB)
        assert server.drained_bytes == pytest.approx(rate * 0.1)
        assert 0.5 < server.utilization() <= 1.0
        server.reset()
        assert server.utilization() == 0.0

    def test_commit_sync_off_uses_cache(self):
        server = make_server(SyncMode.SYNC_OFF, "hdd")
        server.commit(10 * MIB, dt=0.1, n_streams=4, granularity=1 * MIB)
        assert server.dirty_cache_bytes() > 0

    def test_describe(self):
        assert "Sync ON" in make_server().describe()


class TestDeployment:
    def make_deployment(self, n_servers=3):
        fs = FileSystemConfig(
            n_servers=n_servers, device=device_by_name("hdd"), server=ServerConfig()
        )
        return PVFSDeployment(fs, server_nic_bw=1.25e9)

    def test_servers_created(self):
        dep = self.make_deployment()
        assert dep.n_servers == 3
        assert len(dep.describe()) == 3

    def test_drain_rates_vectorized(self):
        dep = self.make_deployment()
        rates = dep.drain_rates(np.array([1, 8, 64]), np.full(3, 1 * MIB))
        assert rates.shape == (3,)
        assert rates[0] >= rates[1] >= rates[2]

    def test_commit_and_reports(self):
        dep = self.make_deployment()
        dep.commit(np.array([1e6, 2e6, 0.0]), 0.1, np.array([4, 4, 4]), np.full(3, 1 * MIB))
        assert dep.total_drained() == pytest.approx(3e6)
        assert dep.utilizations().shape == (3,)
        assert len(dep.utilization_report()) == 3
        dep.reset()
        assert dep.total_drained() == 0.0

    def test_make_client(self):
        dep = self.make_deployment()
        client = dep.make_client("A", 5)
        assert client.rank == 5
        assert client.servers == (0, 1, 2)
        restricted = dep.make_client("B", 0, servers=(1,))
        assert restricted.servers == (1,)

    def test_wrong_shapes_rejected(self):
        dep = self.make_deployment()
        with pytest.raises(ConfigurationError):
            dep.drain_rates(np.array([1]), np.array([1.0]))
