"""Tests for reproducible named random streams."""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams


def test_same_seed_same_sequence():
    a = RandomStreams(42).stream("alpha").random(10)
    b = RandomStreams(42).stream("alpha").random(10)
    assert np.allclose(a, b)


def test_different_names_are_independent():
    streams = RandomStreams(42)
    a = streams.stream("alpha").random(10)
    b = streams.stream("beta").random(10)
    assert not np.allclose(a, b)


def test_creation_order_does_not_matter():
    s1 = RandomStreams(7)
    _ = s1.stream("first").random(100)
    a = s1.stream("second").random(5)

    s2 = RandomStreams(7)
    b = s2.stream("second").random(5)
    assert np.allclose(a, b)


def test_stream_is_cached():
    streams = RandomStreams(1)
    assert streams.stream("x") is streams.stream("x")
    assert "x" in streams.known_streams()


def test_getitem_alias():
    streams = RandomStreams(1)
    assert streams["y"] is streams.stream("y")


def test_reset():
    streams = RandomStreams(3)
    first = streams.stream("z").random(4)
    streams.reset()
    second = streams.stream("z").random(4)
    assert np.allclose(first, second)


def test_fork_is_deterministic_and_distinct():
    base = RandomStreams(11)
    fork_a = base.fork(1).stream("s").random(5)
    fork_a2 = RandomStreams(11).fork(1).stream("s").random(5)
    fork_b = base.fork(2).stream("s").random(5)
    assert np.allclose(fork_a, fork_a2)
    assert not np.allclose(fork_a, fork_b)


def test_requires_integer_seed():
    with pytest.raises(TypeError):
        RandomStreams(3.14)  # type: ignore[arg-type]
