"""Property tests for padded ragged batching (hypothesis).

The width-classed admission path and the padded bucket planner promise
*bitwise* equality with the scalar path for arbitrary ragged group shapes:
any mix of per-server group widths (including empty servers) must admit
exactly what the per-server reference water-filling admits, and any mix of
deployment widths sharing a lockstep cadence must batch into one padded
bucket whose members reproduce their alone fingerprints byte-for-byte.
"""

import dataclasses

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.model.batch import plan_buckets, simulate_many
from repro.model.simulator import simulate_scenario
from repro.network.allocation import proportional_share
from repro.network.incast import ServerBuffers
from repro.obs.telemetry import telemetry_session
from repro.scenarios.spec import build_scenario

from tests._golden_utils import metric_fingerprint

# ---------------------------------------------------------------------- #
# Admission: width-classed stacked water-filling == per-server reference
# ---------------------------------------------------------------------- #

_finite = {"allow_nan": False, "allow_infinity": False}


@st.composite
def ragged_admissions(draw):
    """A random ragged deployment plus one admission round's inputs."""
    n_servers = draw(st.integers(min_value=2, max_value=5))
    widths = draw(
        st.lists(
            st.integers(min_value=0, max_value=4),
            min_size=n_servers, max_size=n_servers,
        )
    )
    assume(sum(widths) > 0)
    grouped = np.repeat(np.arange(n_servers, dtype=np.int64), widths)
    # Interleave the groups: connection ids need not be contiguous per server.
    order = draw(st.permutations(range(int(grouped.shape[0]))))
    conn_server = grouped[np.asarray(order, dtype=np.int64)]
    n = int(conn_server.shape[0])
    offered = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=500.0, **_finite),
                min_size=n, max_size=n,
            )
        ),
        dtype=np.float64,
    )
    weights = np.asarray(
        draw(
            st.lists(
                st.floats(min_value=0.25, max_value=4.0, **_finite),
                min_size=n, max_size=n,
            )
        ),
        dtype=np.float64,
    )
    capacity = draw(st.floats(min_value=10.0, max_value=300.0, **_finite))
    return n_servers, conn_server, offered, weights, capacity


def _reference_admit(conn_server, n_servers, offered, weights, capacity):
    """The scalar reference: one proportional_share call per server."""
    admitted = np.zeros_like(offered)
    offered_per_server = np.bincount(
        conn_server, weights=offered, minlength=n_servers
    )
    for s in np.flatnonzero(offered_per_server > 0):
        mask = conn_server == s
        admitted[mask] = proportional_share(
            offered[mask], float(capacity), weights=weights[mask]
        )
    return admitted


class TestRaggedAdmissionProperty:
    @given(case=ragged_admissions())
    @settings(max_examples=60, deadline=None)
    def test_stacked_matches_reference_bitwise(self, case):
        n_servers, conn_server, offered, weights, capacity = case
        buffers = ServerBuffers(
            n_servers=n_servers, capacity_bytes=capacity, conn_server=conn_server
        )
        admitted, _ = buffers.admit(offered, weights)
        expected = _reference_admit(
            conn_server, n_servers, offered, weights, capacity
        )
        assert np.array_equal(admitted, expected)
        # The padding accounting always balances: every slot of the (S, K)
        # matrix is either a real group slot or a masked pad slot.
        real = int(np.bincount(conn_server, minlength=n_servers).sum())
        if buffers._group_matrix is not None:
            assert buffers.group_slots - buffers.padded_slots >= real
            assert buffers.padded_slots >= 0


# ---------------------------------------------------------------------- #
# Buckets: mixed deployment widths pad together and match alone runs
# ---------------------------------------------------------------------- #

#: Random target-server subsets of the tiny 4-server deployment.  The
#: restriction changes per-server group widths (raggedness) but not the
#: total bytes, so every variant keeps the base scenario's lockstep cadence.
_SERVER_SETS = [(0,), (2,), (0, 1), (0, 2), (1, 2, 3), (0, 1, 2, 3)]


def _restricted(base, servers):
    app = base.applications[0]
    return dataclasses.replace(
        base,
        applications=(dataclasses.replace(app, target_servers=servers),),
    )


class TestPaddedBucketsMatchScalar:
    @given(
        subsets=st.lists(st.sampled_from(_SERVER_SETS), min_size=2, max_size=4)
    )
    @settings(max_examples=10, deadline=None)
    def test_random_ragged_members_match_alone(self, subsets):
        base = build_scenario(["checkpoint"], "tiny").scenario
        scenarios = [_restricted(base, servers) for servers in subsets]
        buckets, fallback = plan_buckets(scenarios, min_batch=1)
        assert not fallback, "fixed-stepping members must never fall back"
        covered = sorted(i for b in buckets for i in b.indices)
        assert covered == list(range(len(scenarios)))
        results = simulate_many(scenarios, min_batch=1)
        for servers, scenario, result in zip(subsets, scenarios, results):
            alone = simulate_scenario(scenario)
            assert metric_fingerprint(result)[0] == metric_fingerprint(alone)[0], (
                f"padded member targeting servers {servers} diverged from "
                "its alone run"
            )

    def test_mixed_width_bucket_pads_and_matches(self):
        base = build_scenario(["checkpoint"], "tiny").scenario
        subsets = [(0, 1, 2, 3), (0, 1), (2,)]
        scenarios = [_restricted(base, servers) for servers in subsets]
        with telemetry_session("padded-bucket") as telemetry:
            results = simulate_many(scenarios, min_batch=1)
            counters = telemetry.snapshot()["counters"]
        assert counters["batch.buckets"] == 1
        assert counters["batch.member_runs"] == 3
        assert "batch.ragged_fallbacks" not in counters
        # Three widths (16, 8, 4 connections per targeted server group) pad
        # to the widest class, so masked slots must be accounted.
        assert counters["batch.padded_slots"] > 0
        assert counters["batch.group_slots"] > counters["batch.padded_slots"]
        for scenario, result in zip(scenarios, results):
            alone = simulate_scenario(scenario)
            assert metric_fingerprint(result)[0] == metric_fingerprint(alone)[0]
