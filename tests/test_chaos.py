"""Tests for the deterministic chaos-injection harness."""

import json
import os

import pytest

from repro.errors import ReproError
from repro.runner.chaos import (
    CHAOS_ENV_VAR,
    ChaosError,
    FaultPlan,
    FaultSpec,
    fault_plan,
    get_fault_plan,
    set_fault_plan,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan(monkeypatch):
    """Every test starts and ends with chaos fully off."""
    monkeypatch.delenv(CHAOS_ENV_VAR, raising=False)
    set_fault_plan(None)
    yield
    set_fault_plan(None)


class TestFaultSpec:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ReproError, match="unknown fault mode"):
            FaultSpec(match="x", mode="explode")

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ReproError, match="probability"):
            FaultSpec(match="x", probability=1.5)

    def test_round_trips_through_dict(self):
        spec = FaultSpec(match="pair:", mode="stall", times=3, delay_s=0.5,
                         probability=0.25)
        assert FaultSpec.from_dict(spec.to_dict()) == spec


class TestFaultPlanMatching:
    def test_substring_match(self):
        plan = FaultPlan.of(FaultSpec(match="pair:"))
        assert plan.spec_for("pair:a+b", 0) is not None
        assert plan.spec_for("alone:a", 0) is None

    def test_empty_match_hits_everything(self):
        plan = FaultPlan.of(FaultSpec(match=""))
        assert plan.spec_for("anything", 0) is not None

    def test_times_bounds_attempts(self):
        plan = FaultPlan.of(FaultSpec(match="t", times=2))
        assert plan.spec_for("t1", 0) is not None
        assert plan.spec_for("t1", 1) is not None
        assert plan.spec_for("t1", 2) is None

    def test_first_matching_rule_wins(self):
        plan = FaultPlan.of(
            FaultSpec(match="t1", mode="slow", delay_s=0.0),
            FaultSpec(match="t", mode="exception"),
        )
        assert plan.spec_for("t1", 0).mode == "slow"
        assert plan.spec_for("t2", 0).mode == "exception"

    def test_probability_coin_is_deterministic(self):
        plan = FaultPlan.of(FaultSpec(match="", probability=0.5), seed=7)
        decisions = [
            plan.spec_for(f"task{i}", 0) is not None for i in range(64)
        ]
        again = [
            plan.spec_for(f"task{i}", 0) is not None for i in range(64)
        ]
        assert decisions == again
        # A fair coin over 64 draws injects somewhere strictly between the
        # extremes; all-or-nothing would mean the coin ignores the task id.
        assert 0 < sum(decisions) < 64

    def test_seed_changes_the_coin(self):
        a = FaultPlan.of(FaultSpec(match="", probability=0.5), seed=1)
        b = FaultPlan.of(FaultSpec(match="", probability=0.5), seed=2)
        picks_a = [a.spec_for(f"task{i}", 0) is not None for i in range(64)]
        picks_b = [b.spec_for(f"task{i}", 0) is not None for i in range(64)]
        assert picks_a != picks_b


class TestInjection:
    def test_exception_mode_raises_chaos_error(self):
        plan = FaultPlan.of(FaultSpec(match="t"))
        with pytest.raises(ChaosError, match="injected exception"):
            plan.maybe_inject("t1", 0)

    def test_no_match_is_a_no_op(self):
        plan = FaultPlan.of(FaultSpec(match="zzz"))
        plan.maybe_inject("t1", 0)  # does not raise

    def test_crash_demoted_to_exception_in_parent(self):
        plan = FaultPlan.of(FaultSpec(match="t", mode="crash"))
        with pytest.raises(ChaosError, match="demoted"):
            plan.maybe_inject("t1", 0, in_worker=False)

    def test_slow_mode_returns_after_sleep(self):
        plan = FaultPlan.of(FaultSpec(match="t", mode="slow", delay_s=0.0))
        plan.maybe_inject("t1", 0)  # sleeps 0s, then proceeds

    def test_stall_mode_raises_if_no_deadline_interrupts(self):
        plan = FaultPlan.of(FaultSpec(match="t", mode="stall", delay_s=0.0))
        with pytest.raises(ChaosError, match="stall"):
            plan.maybe_inject("t1", 0)


class TestActivation:
    def test_round_trips_through_json(self):
        plan = FaultPlan.of(
            FaultSpec(match="a", mode="crash"),
            FaultSpec(match="b", mode="stall", delay_s=1.5),
            seed=42,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ReproError, match="unparseable"):
            FaultPlan.from_json("{not json")
        with pytest.raises(ReproError, match="JSON object"):
            FaultPlan.from_json("[1, 2]")

    def test_env_transport_inline_json(self, monkeypatch):
        plan = FaultPlan.of(FaultSpec(match="x"), seed=3)
        monkeypatch.setenv(CHAOS_ENV_VAR, plan.to_json())
        assert get_fault_plan() == plan

    def test_env_transport_file_path(self, tmp_path, monkeypatch):
        plan = FaultPlan.of(FaultSpec(match="y", mode="slow", delay_s=0.1))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        monkeypatch.setenv(CHAOS_ENV_VAR, str(path))
        assert get_fault_plan() == plan

    def test_env_unreadable_file_path_raises_repro_error(
        self, tmp_path, monkeypatch
    ):
        missing = tmp_path / "no_such_plan.json"
        monkeypatch.setenv(CHAOS_ENV_VAR, str(missing))
        with pytest.raises(ReproError, match=CHAOS_ENV_VAR):
            get_fault_plan()

    def test_override_wins_over_env(self, monkeypatch):
        env_plan = FaultPlan.of(FaultSpec(match="env"))
        override = FaultPlan.of(FaultSpec(match="override"))
        monkeypatch.setenv(CHAOS_ENV_VAR, env_plan.to_json())
        set_fault_plan(override)
        assert get_fault_plan() == override

    def test_absent_env_means_no_plan(self):
        assert get_fault_plan() is None

    def test_context_manager_restores_prior_state(self):
        with fault_plan(FaultPlan.of(FaultSpec(match="a")), env=True):
            assert get_fault_plan() is not None
            exported = json.loads(os.environ[CHAOS_ENV_VAR])
            assert exported["faults"][0]["match"] == "a"
        assert get_fault_plan() is None
        assert CHAOS_ENV_VAR not in os.environ
