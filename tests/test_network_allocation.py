"""Tests for the bandwidth-allocation primitives."""

import numpy as np
import pytest

from repro.network.allocation import (
    admission_order_keys,
    allocate_greedy_in_order,
    cap_by_group,
    group_totals,
    proportional_share,
    split_capacity,
)


class TestProportionalShare:
    def test_under_capacity_everyone_satisfied(self):
        demands = np.array([1.0, 2.0, 3.0])
        alloc = proportional_share(demands, 100.0)
        assert np.allclose(alloc, demands)

    def test_over_capacity_conserves_capacity(self):
        demands = np.array([10.0, 10.0, 10.0, 10.0])
        alloc = proportional_share(demands, 20.0)
        assert alloc.sum() == pytest.approx(20.0)
        assert np.allclose(alloc, 5.0)

    def test_never_exceeds_demand(self):
        demands = np.array([1.0, 100.0])
        alloc = proportional_share(demands, 50.0)
        assert alloc[0] <= 1.0 + 1e-9
        assert alloc.sum() == pytest.approx(50.0)

    def test_weights_bias_allocation(self):
        demands = np.array([100.0, 100.0])
        alloc = proportional_share(demands, 50.0, weights=np.array([3.0, 1.0]))
        assert alloc[0] > alloc[1]
        assert alloc.sum() == pytest.approx(50.0)

    def test_zero_capacity(self):
        assert proportional_share(np.array([5.0]), 0.0).sum() == 0.0

    def test_empty(self):
        assert proportional_share(np.array([]), 10.0).size == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            proportional_share(np.array([[1.0]]), 1.0)
        with pytest.raises(ValueError):
            proportional_share(np.array([1.0]), 1.0, weights=np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            proportional_share(np.array([1.0]), 1.0, weights=np.array([0.0]))


class TestCapByGroup:
    def test_groups_are_scaled_independently(self):
        demands = np.array([10.0, 10.0, 1.0, 1.0])
        groups = np.array([0, 0, 1, 1])
        capped = cap_by_group(demands, groups, np.array([10.0, 10.0]))
        assert capped[:2].sum() == pytest.approx(10.0)
        assert np.allclose(capped[2:], [1.0, 1.0])

    def test_no_scaling_when_under_capacity(self):
        demands = np.array([1.0, 2.0])
        capped = cap_by_group(demands, np.array([0, 0]), np.array([10.0]))
        assert np.allclose(capped, demands)

    def test_empty(self):
        assert cap_by_group(np.array([]), np.array([], dtype=int), np.array([1.0])).size == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cap_by_group(np.array([1.0]), np.array([0, 1]), np.array([1.0, 1.0]))


class TestGreedyAllocation:
    def test_order_keys_prefer_heavy_weights(self, rng):
        weights = np.array([10.0] * 50 + [1.0] * 50)
        keys = admission_order_keys(weights, rng)
        heavy_rank = np.argsort(keys)[:50]
        # Most of the first 50 slots should belong to the heavy-weight half.
        assert np.sum(heavy_rank < 50) > 35

    def test_order_keys_reject_nonpositive_weights(self, rng):
        with pytest.raises(ValueError):
            admission_order_keys(np.array([1.0, 0.0]), rng)

    def test_greedy_respects_capacity_per_group(self):
        demands = np.array([5.0, 5.0, 5.0, 5.0])
        keys = np.array([0.1, 0.2, 0.3, 0.4])
        groups = np.array([0, 0, 1, 1])
        admitted = allocate_greedy_in_order(demands, keys, groups, np.array([7.0, 100.0]))
        assert admitted[0] == pytest.approx(5.0)
        assert admitted[1] == pytest.approx(2.0)
        assert np.allclose(admitted[2:], 5.0)

    def test_greedy_starves_latecomers(self):
        demands = np.array([10.0, 10.0, 10.0])
        keys = np.array([0.0, 1.0, 2.0])
        groups = np.zeros(3, dtype=int)
        admitted = allocate_greedy_in_order(demands, keys, groups, np.array([10.0]))
        assert admitted.tolist() == [10.0, 0.0, 0.0]

    def test_greedy_empty(self):
        out = allocate_greedy_in_order(
            np.array([]), np.array([]), np.array([], dtype=int), np.array([1.0])
        )
        assert out.size == 0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            allocate_greedy_in_order(
                np.array([1.0]), np.array([1.0, 2.0]), np.array([0]), np.array([1.0])
            )


class TestSmallHelpers:
    def test_split_capacity(self):
        out = split_capacity(10.0, np.array([1.0, 3.0]))
        assert np.allclose(out, [2.5, 7.5])
        assert split_capacity(10.0, np.array([0.0, 0.0])).sum() == 0.0

    def test_group_totals(self):
        totals = group_totals(np.array([1.0, 2.0, 3.0]), np.array([0, 1, 1]), 3)
        assert totals.tolist() == [1.0, 5.0, 0.0]
