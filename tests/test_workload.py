"""Tests for the workload substrate (patterns, applications, IOR front end)."""

import numpy as np
import pytest

from repro import units
from repro.config.workload import ApplicationSpec, PatternSpec
from repro.errors import ConfigurationError
from repro.workload.application import Application
from repro.workload.ior import IORParameters, ior_application
from repro.workload.patterns import (
    pattern_extents,
    request_offsets,
    request_sizes,
    total_file_size,
)
from repro.workload.phases import IOPhase, PeriodicCheckpointSchedule

KIB = units.KiB
MIB = units.MiB


class TestPatterns:
    def test_contiguous_offsets(self):
        pattern = PatternSpec.contiguous(bytes_per_process=64 * MIB)
        offsets = request_offsets(pattern, rank=3, n_procs=8)
        assert offsets.tolist() == [3 * 64 * MIB]

    def test_strided_offsets_interleave(self):
        pattern = PatternSpec.strided(bytes_per_process=1 * MIB, request_size=256 * KIB)
        r0 = request_offsets(pattern, rank=0, n_procs=4)
        r1 = request_offsets(pattern, rank=1, n_procs=4)
        assert r0[0] == 0
        assert r1[0] == 256 * KIB
        # Consecutive requests of the same rank are one full "row" apart.
        assert r0[1] - r0[0] == 4 * 256 * KIB

    def test_request_sizes_last_truncated(self):
        pattern = PatternSpec.strided(bytes_per_process=600 * KIB, request_size=256 * KIB)
        sizes = request_sizes(pattern)
        assert len(sizes) == 3
        assert sizes[-1] == pytest.approx(88 * KIB)
        assert sizes.sum() == pytest.approx(600 * KIB)

    def test_pattern_extents_cover_all_ranks(self):
        pattern = PatternSpec.strided(bytes_per_process=1 * MIB, request_size=256 * KIB)
        offsets, lengths = pattern_extents(pattern, op_index=2, n_procs=4)
        assert offsets.shape == (4,)
        assert np.all(lengths == 256 * KIB)
        # Within one operation the ranks' extents are disjoint and adjacent.
        assert np.all(np.diff(offsets) == 256 * KIB)

    def test_pattern_extents_validation(self):
        pattern = PatternSpec.contiguous(1 * MIB)
        with pytest.raises(ConfigurationError):
            pattern_extents(pattern, op_index=1, n_procs=4)
        with pytest.raises(ConfigurationError):
            request_offsets(pattern, rank=9, n_procs=4)
        with pytest.raises(ConfigurationError):
            request_offsets(pattern, rank=0, n_procs=0)

    def test_total_file_size(self):
        pattern = PatternSpec.contiguous(bytes_per_process=4 * MIB)
        assert total_file_size(pattern, 8) == 32 * MIB
        with pytest.raises(ConfigurationError):
            total_file_size(pattern, 0)

    def test_offsets_do_not_overlap_across_ranks(self):
        pattern = PatternSpec.strided(bytes_per_process=512 * KIB, request_size=128 * KIB)
        n_procs = 4
        all_extents = set()
        for rank in range(n_procs):
            offsets = request_offsets(pattern, rank, n_procs)
            sizes = request_sizes(pattern, rank)
            for off, size in zip(offsets, sizes):
                extent = (float(off), float(off + size))
                assert extent not in all_extents
                all_extents.add(extent)


class TestApplication:
    def make_app(self, n_nodes=2, procs_per_node=4):
        spec = ApplicationSpec(
            name="A",
            n_nodes=n_nodes,
            procs_per_node=procs_per_node,
            pattern=PatternSpec.strided(bytes_per_process=1 * MIB, request_size=256 * KIB),
        )
        return Application(0, spec, node_range=(0, n_nodes), servers=(0, 1, 2), first_proc_id=0)

    def test_structure(self):
        app = self.make_app()
        assert app.n_processes == 8
        assert app.n_operations == 4
        assert app.proc_ids().tolist() == list(range(8))
        assert app.node_of_rank().tolist() == [0, 0, 0, 0, 1, 1, 1, 1]
        assert "A" in app.describe()

    def test_operation_extents(self):
        app = self.make_app()
        offsets, lengths = app.operation_extents(0)
        assert offsets.shape == (8,)
        assert np.all(lengths > 0)

    def test_node_range_mismatch_rejected(self):
        spec = ApplicationSpec(
            name="A", n_nodes=2, procs_per_node=1, pattern=PatternSpec.contiguous(1 * MIB)
        )
        with pytest.raises(ConfigurationError):
            Application(0, spec, node_range=(0, 3), servers=(0,), first_proc_id=0)
        with pytest.raises(ConfigurationError):
            Application(0, spec, node_range=(0, 2), servers=(), first_proc_id=0)


class TestPhases:
    def test_checkpoint_schedule(self):
        schedule = PeriodicCheckpointSchedule(period=10.0, n_checkpoints=3, first_start=5.0)
        phases = schedule.phases()
        assert [p.start_time for p in phases] == [5.0, 15.0, 25.0]
        assert len(schedule) == 3
        assert all(isinstance(p, IOPhase) for p in schedule)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PeriodicCheckpointSchedule(period=0, n_checkpoints=1)
        with pytest.raises(ConfigurationError):
            PeriodicCheckpointSchedule(period=1.0, n_checkpoints=0)


class TestIOR:
    def test_contiguous_translation(self):
        params = IORParameters(tasks=16, tasks_per_node=4, block_size=8 * MIB,
                               transfer_size=8 * MIB, segment_count=1)
        spec = ior_application("A", params)
        assert spec.n_nodes == 4
        assert spec.pattern.kind.value == "contiguous"
        assert spec.total_bytes == 16 * 8 * MIB

    def test_strided_translation(self):
        params = IORParameters(tasks=8, tasks_per_node=8, block_size=4 * MIB,
                               transfer_size=256 * KIB, segment_count=2)
        spec = ior_application("B", params, start_time=3.0)
        assert spec.pattern.kind.value == "strided"
        assert spec.start_time == 3.0
        assert spec.pattern.bytes_per_process == 8 * MIB

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IORParameters(tasks=3, tasks_per_node=2)
        with pytest.raises(ConfigurationError):
            IORParameters(tasks=4, tasks_per_node=2, transfer_size=2 * MIB, block_size=1 * MIB)
        with pytest.raises(ConfigurationError):
            IORParameters(tasks=0, tasks_per_node=1)
