"""Tests for the claim-by-claim comparison (repro.analysis.comparison).

The checkers are exercised on synthetic experiment results so that both the
"agrees with the paper" and the "does not agree" paths are covered without
running the simulator.
"""

from typing import Dict, Sequence

import pytest

from repro.analysis.comparison import check_experiment, checks_to_rows, format_checks
from repro.core.delta import DeltaPoint, DeltaSweep
from repro.errors import AnalysisError
from repro.experiments.base import ExperimentResult


# --------------------------------------------------------------------------- #
# Synthetic-result helpers
# --------------------------------------------------------------------------- #


def make_sweep(
    alone: float = 10.0,
    factors: Sequence[float] = (1.0, 1.5, 2.0, 1.5, 1.0),
    asymmetry: float = 0.0,
    collapses: int = 0,
) -> DeltaSweep:
    """Build a synthetic two-application Δ sweep.

    ``factors`` gives application A's interference factor at each delay;
    application B mirrors it shifted by ``asymmetry`` (so that positive
    asymmetry penalizes B, the application that starts second at dt >= 0).
    """
    deltas = [alone * (-1.0 + 2.0 * i / (len(factors) - 1)) for i in range(len(factors))]
    points = []
    per_point_collapses = collapses // max(len(factors), 1)
    for delta, factor in zip(deltas, factors):
        t_a = alone * factor
        t_b = alone * (factor + (asymmetry if delta >= 0 else -asymmetry))
        points.append(
            DeltaPoint(
                delta=delta,
                write_times={"A": t_a, "B": max(t_b, alone)},
                throughputs={"A": 1.0 / t_a, "B": 1.0 / max(t_b, alone)},
                window_collapses={"A": 0, "B": per_point_collapses},
                simulated_time=max(t_a, t_b) + abs(delta),
            )
        )
    return DeltaSweep(points=points, alone_times={"A": alone, "B": alone})


def result_with(experiment_id: str, tables: Dict[str, list] = None,
                sweeps: Dict[str, DeltaSweep] = None) -> ExperimentResult:
    result = ExperimentResult(experiment_id=experiment_id, title="synthetic",
                              paper_reference="synthetic")
    for name, rows in (tables or {}).items():
        result.add_table(name, rows)
    for name, sweep in (sweeps or {}).items():
        result.add_sweep(name, sweep)
    return result


# --------------------------------------------------------------------------- #
# Table I
# --------------------------------------------------------------------------- #


def table1_result(hdd=2.5, ssd=1.9, ram=1.6) -> ExperimentResult:
    rows = [
        {"device": "HDD", "alone_s": 13.0, "interfering_s": 13.0 * hdd, "slowdown": hdd},
        {"device": "SSD", "alone_s": 2.3, "interfering_s": 2.3 * ssd, "slowdown": ssd},
        {"device": "RAM", "alone_s": 1.3, "interfering_s": 1.3 * ram, "slowdown": ram},
    ]
    return result_with("table1", tables={"table1": rows})


class TestTable1Checker:
    def test_agreeing_result_passes_all_claims(self):
        checks = check_experiment(table1_result())
        assert checks and all(c.passed for c in checks)

    def test_wrong_ordering_fails_ordering_claim(self):
        checks = {c.claim_id: c for c in check_experiment(table1_result(hdd=1.5, ssd=1.9))}
        assert not checks["table1.ordering"].passed

    def test_fair_sharing_hdd_fails_head_movement_claim(self):
        checks = {c.claim_id: c for c in check_experiment(table1_result(hdd=2.0))}
        assert not checks["table1.hdd_exceeds_fair_share"].passed

    def test_measured_values_are_recorded(self):
        checks = check_experiment(table1_result())
        ordering = next(c for c in checks if c.claim_id == "table1.ordering")
        assert ordering.measured["HDD"] == pytest.approx(2.5)


# --------------------------------------------------------------------------- #
# Figure 2
# --------------------------------------------------------------------------- #


def figure2_result(hdd_asym=0.1, hdd_collapses=500, null_peak=1.05) -> ExperimentResult:
    sweeps = {}
    summary = []
    for device in ("hdd", "ssd", "ram"):
        for sync in ("sync-on", "sync-off"):
            asym = hdd_asym if (device == "hdd" and sync == "sync-on") else 0.0
            collapses = hdd_collapses if (device == "hdd" and sync == "sync-on") else 0
            sweeps[f"{device}.{sync}"] = make_sweep(
                alone=10.0 if device == "hdd" else 5.0,
                factors=(1.0, 1.5, 2.0, 1.5, 1.0),
                asymmetry=asym,
                collapses=collapses,
            )
            summary.append(
                {"device": device, "sync": "Sync ON" if sync == "sync-on" else "Sync OFF",
                 "alone_s": 10.0 if device == "hdd" else 5.0, "peak_IF": 2.0,
                 "asymmetry": asym, "collapses": collapses}
            )
    sweeps["null-aio"] = make_sweep(alone=4.0, factors=(1.0, null_peak, 1.0))
    summary.append({"device": "null-aio", "sync": "Null-aio", "alone_s": 4.0,
                    "peak_IF": null_peak, "asymmetry": 0.0, "collapses": 0})
    return result_with("figure2", tables={"figure2_summary": summary}, sweeps=sweeps)


class TestFigure2Checker:
    def test_agreeing_result(self):
        checks = check_experiment(figure2_result())
        assert checks and all(c.passed for c in checks)

    def test_flat_null_aio_required(self):
        checks = {c.claim_id: c for c in check_experiment(figure2_result(null_peak=1.8))}
        assert not checks["figure2.null_aio_flat"].passed

    def test_symmetric_hdd_fails_unfairness_claim(self):
        checks = {c.claim_id: c
                  for c in check_experiment(figure2_result(hdd_asym=0.0, hdd_collapses=0))}
        assert not checks["figure2.hdd_sync_on_unfair"].passed


# --------------------------------------------------------------------------- #
# Figure 4 / Figure 6 / Figure 11 / Figure 12 (table-driven checkers)
# --------------------------------------------------------------------------- #


def figure4_result(one_alone=2.6, all_alone=2.7, one_asym=0.01, all_asym=0.15,
                   one_collapses=0, all_collapses=1000) -> ExperimentResult:
    rows = [
        {"configuration": "16 writers per node", "alone_s": all_alone, "peak_IF": 2.0,
         "asymmetry": all_asym, "collapses": all_collapses},
        {"configuration": "1 writer per node", "alone_s": one_alone, "peak_IF": 2.0,
         "asymmetry": one_asym, "collapses": one_collapses},
    ]
    return result_with("figure4", tables={"figure4_summary": rows})


class TestFigure4Checker:
    def test_agreeing_result(self):
        checks = check_experiment(figure4_result())
        assert checks and all(c.passed for c in checks)

    def test_slower_single_writer_fails(self):
        checks = {c.claim_id: c for c in check_experiment(figure4_result(one_alone=3.5))}
        assert not checks["figure4.fewer_writers_faster_alone"].passed

    def test_unfair_single_writer_fails(self):
        checks = {c.claim_id: c for c in check_experiment(
            figure4_result(one_asym=0.5, one_collapses=5000))}
        assert not checks["figure4.fewer_writers_fairer"].passed


def figure6_result(factors=(2.1, 2.2, 2.0, 2.0), throughputs=(1.0, 2.0, 3.0, 5.0)):
    counts = (4, 8, 12, 24)
    scaling = [
        {"servers": n, "max_throughput_GBps": t, "min_throughput_GBps": t / 2}
        for n, t in zip(counts, throughputs)
    ]
    table2 = [
        {"servers": n, "peak_interference_factor": f, "paper_value": 2.1}
        for n, f in zip(counts, factors)
    ]
    return result_with("figure6", tables={"figure6a_scaling": scaling,
                                          "table2_interference": table2})


class TestFigure6Checker:
    def test_agreeing_result(self):
        checks = check_experiment(figure6_result())
        assert checks and all(c.passed for c in checks)

    def test_flat_scaling_fails_throughput_claim(self):
        checks = {c.claim_id: c for c in check_experiment(
            figure6_result(throughputs=(3.0, 3.0, 3.0, 3.0)))}
        assert not checks["figure6.throughput_scales"].passed

    def test_varying_interference_fails_constancy_claim(self):
        checks = {c.claim_id: c for c in check_experiment(
            figure6_result(factors=(1.2, 2.0, 2.8, 3.5)))}
        assert not checks["figure6.interference_constant"].passed


def figure11_result(first_point=0.9, second_point=0.4, first_collapses=10,
                    second_collapses=500):
    rows = [
        {"application": "A", "starts": "first", "write_time_s": 40.0,
         "progress_at_slowdown": first_point, "window_time_near_floor": 0.05,
         "window_collapses": first_collapses},
        {"application": "B", "starts": "second", "write_time_s": 50.0,
         "progress_at_slowdown": second_point, "window_time_near_floor": 0.4,
         "window_collapses": second_collapses},
    ]
    return result_with("figure11", tables={"figure11_summary": rows})


class TestFigure11Checker:
    def test_agreeing_result(self):
        checks = check_experiment(figure11_result())
        assert checks and all(c.passed for c in checks)

    def test_reversed_unfairness_fails(self):
        checks = check_experiment(figure11_result(first_point=0.3, second_point=0.9))
        assert not any(c.passed for c in checks)


def figure12_result(collapses=(0, 0, 500, 2000)):
    clients = (48, 96, 144, 192)
    rows = [
        {"total_clients": n, "procs_per_node": n // 24, "alone_s": 2.0, "peak_IF": 2.0,
         "asymmetry": 0.01 * i, "collapses": c}
        for i, (n, c) in enumerate(zip(clients, collapses))
    ]
    return result_with("figure12", tables={"figure12_summary": rows})


class TestFigure12Checker:
    def test_agreeing_result(self):
        checks = check_experiment(figure12_result())
        assert checks and all(c.passed for c in checks)

    def test_collapses_everywhere_fails_threshold_claim(self):
        checks = check_experiment(figure12_result(collapses=(3000, 2500, 2000, 1500)))
        assert not any(c.passed for c in checks)


# --------------------------------------------------------------------------- #
# Generic behaviour
# --------------------------------------------------------------------------- #


class TestCheckExperimentGeneric:
    def test_unknown_experiment_raises(self):
        bogus = ExperimentResult(experiment_id="figure99", title="?", paper_reference="?")
        with pytest.raises(AnalysisError):
            check_experiment(bogus)

    def test_checks_to_rows_and_format(self):
        checks = check_experiment(table1_result())
        rows = checks_to_rows(checks)
        assert len(rows) == len(checks)
        assert {"claim", "section", "agrees", "measured"} <= set(rows[0])
        text = format_checks(checks)
        assert "PASS" in text

    def test_format_checks_empty(self):
        assert "no claims" in format_checks([])

    def test_claim_check_describe_mentions_status(self):
        checks = check_experiment(table1_result(hdd=1.5, ssd=1.9))
        failing = next(c for c in checks if not c.passed)
        assert failing.describe().startswith("[MISS]")
        assert failing.experiment_id == "table1"
