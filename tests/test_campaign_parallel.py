"""Tests for the parallel + cached campaign paths.

Uses the three cheapest experiments (table1, figure10, figure11) so the
campaign runs in well under a second per pass.
"""

import pytest

from repro.analysis.campaign import (
    ExperimentRecord,
    campaign_to_markdown,
    run_campaign,
)

CHEAP_IDS = ["table1", "figure10", "figure11"]


@pytest.fixture(scope="module")
def serial_campaign():
    return run_campaign(scale="tiny", quick=True, experiments=CHEAP_IDS)


class TestParallelCampaign:
    def test_two_workers_byte_identical_markdown(self, serial_campaign):
        parallel = run_campaign(
            scale="tiny", quick=True, experiments=CHEAP_IDS, jobs=2
        )
        assert campaign_to_markdown(parallel) == campaign_to_markdown(serial_campaign)

    def test_records_keep_presentation_order(self):
        campaign = run_campaign(
            scale="tiny", quick=True, experiments=["figure11", "table1"], jobs=2
        )
        assert [r.experiment_id for r in campaign.records] == ["figure11", "table1"]

    def test_progress_fires_once_per_experiment(self):
        seen = []
        run_campaign(
            scale="tiny", quick=True, experiments=CHEAP_IDS, jobs=2,
            progress=lambda eid, record: seen.append(eid),
        )
        assert sorted(seen) == sorted(CHEAP_IDS)


class TestCachedCampaign:
    def test_second_run_served_entirely_from_cache(self, tmp_path, serial_campaign):
        cache_dir = str(tmp_path / "cache")
        first = run_campaign(
            scale="tiny", quick=True, experiments=CHEAP_IDS, cache_dir=cache_dir
        )
        assert first.n_cached == 0
        second = run_campaign(
            scale="tiny", quick=True, experiments=CHEAP_IDS, cache_dir=cache_dir
        )
        assert second.n_cached == len(CHEAP_IDS)
        assert all(record.from_cache for record in second.records)
        # and the cached rendering is byte-identical to the fresh one
        assert campaign_to_markdown(second) == campaign_to_markdown(serial_campaign)

    def test_cache_key_respects_quick_flag(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_campaign(scale="tiny", quick=True, experiments=["table1"],
                     cache_dir=cache_dir)
        other = run_campaign(scale="tiny", quick=False, experiments=["table1"],
                             cache_dir=cache_dir)
        assert other.n_cached == 0

    def test_partial_cache_resumes(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_campaign(scale="tiny", quick=True, experiments=["table1"],
                     cache_dir=cache_dir)
        resumed = run_campaign(scale="tiny", quick=True,
                               experiments=["table1", "figure10"],
                               cache_dir=cache_dir)
        assert resumed.record("table1").from_cache
        assert not resumed.record("figure10").from_cache

    def test_describe_reports_cache_hits(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_campaign(scale="tiny", quick=True, experiments=["table1"],
                     cache_dir=cache_dir)
        again = run_campaign(scale="tiny", quick=True, experiments=["table1"],
                             cache_dir=cache_dir)
        assert "(1 from cache)" in again.describe()


class TestRecordPayloadRoundTrip:
    def test_round_trip(self, serial_campaign):
        record = serial_campaign.record("table1")
        restored = ExperimentRecord.from_payload(record.to_payload())
        assert restored.experiment_id == record.experiment_id
        assert restored.n_claims == record.n_claims
        assert restored.n_agreeing == record.n_agreeing
        assert restored.result.to_dict() == record.result.to_dict()
        assert not restored.from_cache
        cached = ExperimentRecord.from_payload(record.to_payload(), from_cache=True)
        assert cached.from_cache


class TestMarkdownTiming:
    def test_default_markdown_has_no_timing(self, serial_campaign):
        text = campaign_to_markdown(serial_campaign)
        assert "runtime" not in text
        assert "wall time" not in text

    def test_opt_in_timing(self, serial_campaign):
        text = campaign_to_markdown(serial_campaign, include_timing=True)
        assert "runtime" in text
        assert "campaign wall time" in text
