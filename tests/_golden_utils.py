"""Shared machinery of the golden-trace regression harness.

A *golden* is a compact fingerprint of everything one fixed-stepping
simulation produces: per-application phase boundaries and byte counts, step
counts, component statistics, and a summary of every recorded
:class:`~repro.sim.timeseries.TimeSeries`.  The fingerprints of every preset
configuration and every workload archetype are stored in
``tests/goldens/goldens.json``; ``tests/test_goldens.py`` asserts they never
drift, and ``python -m tests.regen_goldens`` re-records them after an
*intentional* model change.

Floats are fingerprinted at full precision (``repr`` round-trips the exact
IEEE value), so a golden catches a single-ULP drift anywhere in the
simulated pipeline — which is exactly the regression the fixed stepping
policy promises never to introduce.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Callable, Dict, Tuple

from repro.config.presets import make_scenario
from repro.config.scenario import ScenarioConfig
from repro.model.results import RunResult
from repro.model.simulator import simulate_scenario
from repro.scenarios.archetypes import archetype_names
from repro.scenarios.spec import build_scenario

GOLDENS_PATH = Path(__file__).resolve().parent / "goldens" / "goldens.json"

REGEN_HINT = (
    "if the change is intentional, regenerate the goldens with: "
    "PYTHONPATH=src python -m tests.regen_goldens"
)

#: Preset two-application configurations (the paper's knobs) fingerprinted at
#: tiny scale.  One entry per distinct simulation regime.
PRESET_CASES: Dict[str, Dict[str, object]] = {
    "preset/hdd-sync-on": dict(device="hdd", sync_mode="sync-on"),
    "preset/hdd-sync-off": dict(device="hdd", sync_mode="sync-off"),
    "preset/ssd-sync-on": dict(device="ssd", sync_mode="sync-on"),
    "preset/ssd-sync-off": dict(device="ssd", sync_mode="sync-off"),
    "preset/ram-sync-on": dict(device="ram", sync_mode="sync-on"),
    "preset/null-aio": dict(device="hdd", sync_mode="null-aio"),
    "preset/hdd-strided": dict(device="hdd", sync_mode="sync-on", pattern="strided"),
    "preset/hdd-delayed": dict(device="hdd", sync_mode="sync-on", delay=5.0),
    "preset/hdd-negative-delay": dict(device="hdd", sync_mode="sync-on", delay=-2.0),
    "preset/1g-network": dict(device="hdd", sync_mode="sync-on", network="1g"),
}

#: Archetype pairings fingerprinted in addition to every archetype alone.
PAIR_CASES: Tuple[Tuple[str, str], ...] = (
    ("checkpoint", "analytics"),
    ("incast", "streaming"),
)


def golden_cases() -> Dict[str, Callable[[], ScenarioConfig]]:
    """Every golden case: name -> zero-argument scenario factory.

    Covers the preset configurations above, every registered workload
    archetype alone, and two representative archetype pairs — all at tiny
    scale under the default (fixed) stepping policy.
    """
    cases: Dict[str, Callable[[], ScenarioConfig]] = {}
    for name, kwargs in PRESET_CASES.items():
        cases[name] = (lambda kw=kwargs: make_scenario("tiny", **kw))
    for archetype in archetype_names():
        cases[f"archetype/{archetype}"] = (
            lambda a=archetype: build_scenario([a], "tiny").scenario
        )
    for a, b in PAIR_CASES:
        cases[f"pair/{a}+{b}"] = (
            lambda x=a, y=b: build_scenario([x, y], "tiny").scenario
        )
    return cases


def _full(value: float) -> str:
    """Full-precision, round-trippable text form of one float."""
    return repr(float(value))


def fingerprint_payload_of(result: RunResult) -> Dict[str, object]:
    """The canonical fingerprint payload of one run.

    Deliberately excludes wall time (non-deterministic) and anything
    derived from it; everything else a simulation produces is covered.
    """
    apps = {
        name: {
            "start_time": _full(app.start_time),
            "end_time": _full(app.end_time),
            "bytes_written": _full(app.bytes_written),
            "window_collapses": int(app.window_collapses),
        }
        for name, app in sorted(result.applications.items())
    }
    comp = result.components
    components = {
        "client_nic_utilization": _full(comp.client_nic_utilization),
        "server_nic_utilization": _full(comp.server_nic_utilization),
        "server_utilization": [_full(v) for v in comp.server_utilization],
        "device_utilization": [_full(v) for v in comp.device_utilization],
        "buffer_pressure": [_full(v) for v in comp.buffer_pressure],
        "total_window_collapses": int(comp.total_window_collapses),
    }
    series = {}
    for name in result.recorder.series_names():
        ts = result.recorder.get_series(name)
        series[name] = {
            "n": len(ts),
            "first_time": _full(ts.times[0]) if len(ts) else None,
            "last_time": _full(ts.times[-1]) if len(ts) else None,
            "mean": _full(ts.mean()) if len(ts) else None,
            "integral": _full(ts.integral()) if len(ts) else None,
        }
    return {
        "apps": apps,
        "components": components,
        "n_steps": int(result.n_steps),
        "simulated_time": _full(result.simulated_time),
        "series": series,
    }


def metric_fingerprint(result: RunResult) -> Tuple[str, Dict[str, object]]:
    """``(sha256-digest, payload)`` of one run's fingerprint."""
    payload = fingerprint_payload_of(result)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest(), payload


def compute_golden(factory: Callable[[], ScenarioConfig]) -> Tuple[str, Dict[str, object]]:
    """Run one case's scenario and fingerprint the result."""
    return metric_fingerprint(simulate_scenario(factory()))


def load_goldens() -> Dict[str, Dict[str, object]]:
    """The stored goldens (name -> {fingerprint, payload})."""
    with open(GOLDENS_PATH, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return document["cases"]
