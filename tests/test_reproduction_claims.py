"""Qualitative reproduction claims, validated at the test (tiny) scale.

These tests assert the *shape* results of the paper that the simulator is
designed to reproduce and that do not require the reduced/paper scale:

* Table I device ordering (HDD > SSD > RAM slowdowns),
* contention costs roughly a 2x slowdown when both applications overlap,
* removing the shared component (partitioned servers, null-aio backend)
  removes the interference,
* the Incast regime produces window collapses under contention but not when
  an application runs alone,
* interference disappears when the bursts no longer overlap (large |dt|).

The full figure-by-figure reproduction at the reduced scale is exercised by
the benchmark harness (see ``benchmarks/`` and EXPERIMENTS.md).
"""

import pytest

from repro import units
from repro.config.presets import make_scenario, make_single_app_scenario
from repro.core.experiment import TwoApplicationExperiment
from repro.model.local import simulate_local_writes
from repro.model.simulator import simulate_scenario
from repro.storage import device_by_name


@pytest.fixture(scope="module")
def hdd_experiment():
    return TwoApplicationExperiment("tiny", device="hdd", sync_mode="sync-on")


class TestTableIClaims:
    def test_slowdown_ordering_and_magnitudes(self):
        slowdowns = {}
        for name in ("hdd", "ssd", "ram"):
            device = device_by_name(name)
            alone = simulate_local_writes(device, 1, bytes_per_app=512 * units.MiB)
            both = simulate_local_writes(device, 2, bytes_per_app=512 * units.MiB)
            slowdowns[name] = both.slowdown_versus(alone)
        # Paper: 2.49x / 1.96x / 1.58x.
        assert slowdowns["hdd"] > 2.2
        assert 1.7 < slowdowns["ssd"] < 2.2
        assert 1.3 < slowdowns["ram"] < 1.8
        assert slowdowns["hdd"] > slowdowns["ssd"] > slowdowns["ram"]


class TestContentionClaims:
    def test_simultaneous_start_costs_about_two_x(self, hdd_experiment):
        result = hdd_experiment.run_point(0.0)
        alone = hdd_experiment.alone_time()
        factor = result.write_time("A") / alone
        assert 1.6 < factor < 3.0

    def test_interference_vanishes_without_overlap(self, hdd_experiment):
        alone = hdd_experiment.alone_time()
        result = hdd_experiment.run_point(delay=4.0 * alone)
        assert result.write_time("A") < 1.15 * alone
        assert result.write_time("B") < 1.15 * alone

    def test_incast_collapses_only_under_contention(self, hdd_experiment):
        contended = hdd_experiment.run_point(0.05)
        alone = hdd_experiment.baseline()
        assert contended.total_window_collapses() > 0
        assert alone.total_window_collapses() == 0


class TestRuleOutClaims:
    def test_null_aio_removes_interference(self):
        exp = TwoApplicationExperiment("tiny", device="hdd", sync_mode="null-aio")
        result = exp.run_point(0.0)
        factor = result.write_time("A") / exp.alone_time()
        assert factor < 1.2

    def test_partitioned_servers_remove_interference(self):
        partitioned = make_scenario(
            "tiny", device="hdd", sync_mode="sync-on", partition_servers=True
        )
        alone = make_single_app_scenario(
            "tiny", device="hdd", sync_mode="sync-on", partition_servers=True
        )
        contended_result = simulate_scenario(partitioned)
        alone_result = simulate_scenario(alone)
        factor = contended_result.write_time("A") / alone_result.write_time("A")
        assert factor < 1.3

    def test_fewer_servers_cost_alone_performance(self):
        full = make_single_app_scenario("tiny", device="hdd", sync_mode="sync-on")
        half = make_single_app_scenario(
            "tiny", device="hdd", sync_mode="sync-on", partition_servers=True
        )
        assert (
            simulate_scenario(half).write_time("A")
            > simulate_scenario(full).write_time("A")
        )

    def test_sync_off_is_faster_than_sync_on_for_hdd(self):
        on = simulate_scenario(make_single_app_scenario("tiny", device="hdd",
                                                        sync_mode="sync-on"))
        off = simulate_scenario(make_single_app_scenario("tiny", device="hdd",
                                                         sync_mode="sync-off"))
        assert off.write_time("A") < on.write_time("A")

    def test_stripe_size_improves_strided_performance(self):
        small = simulate_scenario(
            make_single_app_scenario(
                "tiny", device="hdd", sync_mode="sync-on", pattern="strided",
                stripe_size=64 * units.KiB,
            )
        )
        large = simulate_scenario(
            make_single_app_scenario(
                "tiny", device="hdd", sync_mode="sync-on", pattern="strided",
                stripe_size=256 * units.KiB,
            )
        )
        assert large.write_time("A") < small.write_time("A")
