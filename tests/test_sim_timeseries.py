"""Tests for the TimeSeries container."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.sim.timeseries import TimeSeries


def make_series():
    ts = TimeSeries(name="load", unit="B/s")
    for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0), (4.0, 5.0)]:
        ts.append(t, v)
    return ts


class TestConstruction:
    def test_append_and_len(self):
        ts = make_series()
        assert len(ts) == 4
        assert ts.times.tolist() == [0.0, 1.0, 2.0, 4.0]
        assert ts.values.tolist() == [1.0, 3.0, 2.0, 5.0]

    def test_out_of_order_rejected(self):
        ts = make_series()
        with pytest.raises(AnalysisError):
            ts.append(3.0, 1.0)

    def test_growth_beyond_initial_capacity(self):
        ts = TimeSeries()
        for i in range(1000):
            ts.append(float(i), float(i * 2))
        assert len(ts) == 1000
        assert ts.values[-1] == 1998.0

    def test_from_arrays_roundtrip(self):
        ts = make_series()
        clone = TimeSeries.from_arrays(ts.times, ts.values, name="clone")
        assert np.allclose(clone.times, ts.times)
        assert np.allclose(clone.values, ts.values)

    def test_from_arrays_validation(self):
        with pytest.raises(AnalysisError):
            TimeSeries.from_arrays(np.array([0.0, 1.0]), np.array([1.0]))
        with pytest.raises(AnalysisError):
            TimeSeries.from_arrays(np.array([1.0, 0.0]), np.array([1.0, 2.0]))

    def test_extend(self):
        ts = TimeSeries()
        ts.extend([0.0, 1.0], [5.0, 6.0])
        assert len(ts) == 2

    def test_extend_bulk_matches_repeated_append(self):
        times = np.sort(np.random.default_rng(7).uniform(0.0, 10.0, size=1000))
        values = np.arange(1000, dtype=np.float64)
        bulk = TimeSeries()
        bulk.extend(times, values)
        one_by_one = TimeSeries()
        for t, v in zip(times, values):
            one_by_one.append(float(t), float(v))
        assert np.array_equal(bulk.times, one_by_one.times)
        assert np.array_equal(bulk.values, one_by_one.values)

    def test_extend_grows_once_past_capacity(self):
        ts = TimeSeries()
        ts.append(0.0, 1.0)
        ts.extend(np.arange(1.0, 1001.0), np.zeros(1000))
        assert len(ts) == 1001
        assert ts.times[-1] == 1000.0

    def test_extend_validates_order(self):
        ts = TimeSeries()
        with pytest.raises(AnalysisError):
            ts.extend([1.0, 0.5], [0.0, 0.0])  # internally out of order
        ts.append(5.0, 0.0)
        with pytest.raises(AnalysisError):
            ts.extend([4.0, 6.0], [0.0, 0.0])  # precedes the last sample
        with pytest.raises(AnalysisError):
            ts.extend([6.0, 7.0], [0.0])  # shape mismatch
        assert len(ts) == 1

    def test_extend_empty_is_a_no_op(self):
        ts = TimeSeries()
        ts.extend([], [])
        assert ts.is_empty()

    def test_extend_accepts_generators(self):
        ts = TimeSeries()
        ts.extend((float(t) for t in range(5)), (float(v) for v in range(5)))
        assert len(ts) == 5
        assert ts.times[-1] == 4.0

    def test_dict_roundtrip(self):
        ts = make_series()
        clone = TimeSeries.from_dict(ts.to_dict())
        assert np.allclose(clone.times, ts.times)
        assert clone.name == "load"
        assert clone.unit == "B/s"


class TestQueries:
    def test_last(self):
        assert make_series().last() == (4.0, 5.0)

    def test_empty_queries_raise(self):
        ts = TimeSeries()
        assert ts.is_empty()
        with pytest.raises(AnalysisError):
            ts.last()
        with pytest.raises(AnalysisError):
            ts.mean()
        with pytest.raises(AnalysisError):
            ts.value_at(1.0)

    def test_value_at_sample_and_hold(self):
        ts = make_series()
        assert ts.value_at(0.5) == 1.0
        assert ts.value_at(1.0) == 3.0
        assert ts.value_at(3.9) == 2.0
        assert ts.value_at(100.0) == 5.0
        assert ts.value_at(-1.0) == 1.0

    def test_statistics(self):
        ts = make_series()
        assert ts.max() == 5.0
        assert ts.min() == 1.0
        assert ts.duration() == 4.0
        # time-weighted mean of piecewise constant: (1*1 + 3*1 + 2*2)/4
        assert ts.mean() == pytest.approx(2.0)
        assert ts.integral() == pytest.approx(8.0)

    def test_resample(self):
        ts = make_series()
        values = ts.resample(np.array([0.0, 1.5, 3.0, 10.0]))
        assert values.tolist() == [1.0, 3.0, 2.0, 5.0]

    def test_window(self):
        ts = make_series()
        win = ts.window(1.0, 2.5)
        assert win.times.tolist() == [1.0, 2.0]
        with pytest.raises(AnalysisError):
            ts.window(3.0, 1.0)

    def test_diff(self):
        ts = make_series()
        diff = ts.diff()
        assert diff.times.tolist() == [1.0, 2.0, 4.0]
        assert diff.values.tolist() == [2.0, -1.0, 3.0]
        assert len(TimeSeries().diff()) == 0
