"""Unit tests of the workload-archetype registry and builders."""

import pytest

from repro import units
from repro.config.presets import tiny_scale
from repro.config.workload import AccessKind
from repro.errors import ConfigurationError
from repro.scenarios.archetypes import (
    Archetype,
    archetype_names,
    get_archetype,
    list_archetypes,
    register_archetype,
)

EXPECTED_BUILTINS = {
    "checkpoint", "analytics", "smallfile", "streaming",
    "randomread", "mixed", "staggered", "incast",
}


class TestRegistry:
    def test_all_builtins_registered(self):
        assert EXPECTED_BUILTINS <= set(archetype_names())

    def test_lookup_is_case_insensitive(self):
        assert get_archetype("Checkpoint").name == "checkpoint"
        assert get_archetype(" INCAST ").name == "incast"

    def test_unknown_archetype_lists_registry(self):
        with pytest.raises(ConfigurationError, match="available"):
            get_archetype("no-such-workload")

    def test_list_is_sorted_and_complete(self):
        listed = list_archetypes()
        assert [a.name for a in listed] == archetype_names()

    def test_duplicate_registration_rejected(self):
        existing = get_archetype("checkpoint")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_archetype(existing)
        # replace_existing re-registers without changing the registry size.
        before = len(archetype_names())
        register_archetype(existing, replace_existing=True)
        assert len(archetype_names()) == before

    def test_invalid_archetypes_rejected(self):
        for kwargs in (
            dict(volume_scale=0.0),
            dict(nodes_scale=-1.0),
            dict(request_size=0.0),
            dict(overhead_scale=-0.1),
            dict(n_groups=0),
            dict(stagger_frac=-0.5),
        ):
            with pytest.raises(ConfigurationError):
                Archetype(name="bad", title="t", description="d", **kwargs)


class TestBuilders:
    def test_checkpoint_matches_paper_baseline(self):
        preset = tiny_scale()
        (app,) = get_archetype("checkpoint").applications(preset)
        assert app.name == "checkpoint"
        assert app.n_nodes == preset.nodes_per_app
        assert app.procs_per_node == preset.procs_per_node
        assert app.pattern.kind is AccessKind.CONTIGUOUS
        assert app.pattern.bytes_per_process == preset.bytes_per_process
        assert app.pattern.collective

    def test_staggered_expands_into_offset_groups(self):
        preset = tiny_scale()
        arch = get_archetype("staggered")
        apps = arch.applications(preset, start_time=1.0)
        assert [a.name for a in apps] == ["staggered.1", "staggered.2"]
        assert apps[0].start_time == 1.0
        assert apps[1].start_time > apps[0].start_time
        stagger = apps[1].start_time - apps[0].start_time
        assert stagger == pytest.approx(
            arch.stagger_frac * arch.phase_estimate(preset)
        )
        # The node budget is split across the groups.
        assert sum(a.n_nodes for a in apps) <= preset.nodes_per_app

    def test_smallfile_is_fragment_dominated(self):
        preset = tiny_scale()
        (app,) = get_archetype("smallfile").applications(preset)
        assert app.pattern.kind is AccessKind.STRIDED
        assert app.pattern.effective_request_size == 8 * units.KiB
        assert not app.pattern.collective
        assert app.pattern.requests_per_process > 100

    def test_request_clamped_to_tiny_volumes(self):
        """Overriding the volume below the request size shrinks the request."""
        preset = tiny_scale()
        (app,) = get_archetype("analytics").applications(
            preset, bytes_per_process=128 * units.KiB
        )
        assert app.pattern.effective_request_size <= app.pattern.bytes_per_process

    def test_overrides_apply(self):
        preset = tiny_scale()
        (app,) = get_archetype("streaming").applications(
            preset, nodes=2, procs_per_node=3, bytes_per_process=units.MiB,
            request_size=64 * units.KiB, name="tap", start_time=0.5,
        )
        assert (app.name, app.n_nodes, app.procs_per_node) == ("tap", 2, 3)
        assert app.pattern.bytes_per_process == units.MiB
        assert app.pattern.effective_request_size == 64 * units.KiB
        assert app.start_time == 0.5

    def test_describe_names_every_builtin(self):
        for arch in list_archetypes():
            text = arch.describe()
            assert arch.name in text
            assert arch.title in text
