"""Tests of the phase-aware stepping core and its adaptive time advance.

Two invariants anchor this file:

* ``fixed`` stepping is the *seed behaviour*: the goldens below were captured
  from the repository before the stepping core was refactored into phases, and
  the fixed policy must keep reproducing them bit for bit.
* ``adaptive`` stepping is an approximation with an explicit error budget: on
  every preset scenario its headline results must stay within the configured
  tolerance of the fixed trajectory, while quiescent-heavy scenarios must run
  in a fraction of the steps.
"""

import numpy as np
import pytest

from repro.config.control import (
    SteppingMode,
    SteppingPolicy,
    default_stepping_policy,
    set_default_stepping_policy,
    stepping_policy,
)
from repro.config.presets import make_scenario
from repro.config.scenario import SimulationControl
from repro.errors import ConfigurationError
from repro.model.simulator import IOPathSimulator, simulate_scenario

ADAPTIVE = SteppingPolicy.adaptive()

#: Captured from the seed implementation (monolithic fixed-step loop) before
#: the phase refactor: scenario kwargs -> exact per-application write times
#: and step count.  The fixed policy must reproduce these bit for bit.
SEED_GOLDENS = {
    "hdd-sync-on": (
        dict(device="hdd", sync_mode="sync-on"),
        {"A": 0.7328760000000007, "B": 0.7562160000000008},
        162,
    ),
    "ssd-sync-off": (
        dict(device="ssd", sync_mode="sync-off"),
        {"A": 0.36000000000000026, "B": 0.34800000000000025},
        180,
    ),
    "hdd-delayed": (
        dict(device="hdd", sync_mode="sync-on", delay=5.0),
        {"A": 0.35840000000000016, "B": 0.3544960000000348},
        747,
    ),
    "hdd-strided": (
        dict(device="hdd", sync_mode="sync-on", pattern="strided"),
        {"A": 9.35000399999991, "B": 9.35000399999991},
        2003,
    ),
}

#: Scenario knobs the tolerance property is checked across (one entry per
#: distinct stepping regime: contended, cached, delayed, strided, bypass).
PRESET_SCENARIOS = [
    dict(device="hdd", sync_mode="sync-on"),
    dict(device="ssd", sync_mode="sync-off"),
    dict(device="hdd", sync_mode="sync-on", delay=5.0),
    dict(device="hdd", sync_mode="sync-on", delay=-5.0),
    dict(device="hdd", sync_mode="sync-on", pattern="strided"),
    dict(device="hdd", sync_mode="null-aio"),
]


class TestSteppingPolicy:
    def test_fixed_is_the_default_everywhere(self):
        assert default_stepping_policy() == SteppingPolicy.fixed()
        assert SimulationControl().resolve_stepping() == SteppingPolicy.fixed()
        scenario = make_scenario("tiny")
        assert scenario.control.stepping is None
        assert not IOPathSimulator(scenario).stepping.is_adaptive

    def test_mode_coercion_and_validation(self):
        assert SteppingPolicy(mode="adaptive").mode is SteppingMode.ADAPTIVE
        with pytest.raises(ConfigurationError):
            SteppingPolicy(mode="sometimes")
        with pytest.raises(ConfigurationError):
            SteppingPolicy.adaptive(tolerance=0.0)
        with pytest.raises(ConfigurationError):
            SteppingPolicy.adaptive(tolerance=1.5)
        with pytest.raises(ConfigurationError):
            SteppingPolicy.adaptive(max_dt=-1.0)

    def test_dict_roundtrip(self):
        policy = SteppingPolicy.adaptive(tolerance=0.1, max_dt=2.0)
        assert SteppingPolicy.from_dict(policy.to_dict()) == policy
        assert SteppingPolicy.from_dict(SteppingPolicy.fixed().to_dict()).mode is (
            SteppingMode.FIXED
        )

    def test_context_manager_scopes_the_default(self):
        assert not default_stepping_policy().is_adaptive
        with stepping_policy(ADAPTIVE):
            assert default_stepping_policy().is_adaptive
            # A scenario with no pinned policy resolves to the scoped default.
            assert make_scenario("tiny").control.resolve_stepping().is_adaptive
        assert not default_stepping_policy().is_adaptive

    def test_context_manager_none_is_a_no_op(self):
        previous = set_default_stepping_policy(ADAPTIVE)
        try:
            with stepping_policy(None):
                assert default_stepping_policy().is_adaptive
            assert default_stepping_policy().is_adaptive
        finally:
            set_default_stepping_policy(previous)

    def test_scenario_with_stepping_pins_the_policy(self):
        scenario = make_scenario("tiny").with_stepping(ADAPTIVE)
        assert scenario.control.resolve_stepping().is_adaptive
        assert scenario.with_stepping(None).control.stepping is None


class TestFixedModeIsSeedBehavior:
    @pytest.mark.parametrize("name", sorted(SEED_GOLDENS))
    def test_byte_identical_to_seed(self, name):
        kwargs, write_times, n_steps = SEED_GOLDENS[name]
        result = simulate_scenario(make_scenario("tiny", **kwargs))
        for app, expected in write_times.items():
            got = result.applications[app].end_time - result.applications[app].start_time
            assert got == expected  # exact: no tolerance
        assert result.n_steps == n_steps

    def test_fixed_unaffected_by_adaptive_default(self):
        """A pinned fixed policy wins over an adaptive process default."""
        kwargs, write_times, n_steps = SEED_GOLDENS["hdd-delayed"]
        scenario = make_scenario("tiny", **kwargs).with_stepping(SteppingPolicy.fixed())
        with stepping_policy(ADAPTIVE):
            result = simulate_scenario(scenario)
        assert result.n_steps == n_steps
        app = result.applications["A"]
        assert app.end_time - app.start_time == write_times["A"]


class TestAdaptiveTolerance:
    @pytest.mark.parametrize("idx", range(len(PRESET_SCENARIOS)))
    def test_matches_fixed_within_tolerance(self, idx):
        """Property: adaptive write times track fixed ones within tolerance."""
        kwargs = PRESET_SCENARIOS[idx]
        fixed = simulate_scenario(make_scenario("tiny", **kwargs))
        policy = SteppingPolicy.adaptive(tolerance=0.05)
        adaptive = simulate_scenario(
            make_scenario("tiny", stepping=policy, **kwargs)
        )
        for name, app in fixed.applications.items():
            expected = app.end_time - app.start_time
            got = (
                adaptive.applications[name].end_time
                - adaptive.applications[name].start_time
            )
            assert got == pytest.approx(expected, rel=policy.tolerance)
        assert adaptive.n_steps <= fixed.n_steps

    def test_quiescent_lead_in_collapses(self):
        """A long dead interval costs O(1) steps instead of O(interval/dt)."""
        kwargs = dict(device="hdd", sync_mode="sync-on", delay=5.0)
        fixed = simulate_scenario(make_scenario("tiny", **kwargs))
        adaptive = simulate_scenario(
            make_scenario("tiny", stepping=ADAPTIVE, **kwargs)
        )
        assert adaptive.n_steps * 2 <= fixed.n_steps  # >= 2x fewer steps
        assert adaptive.simulated_time == pytest.approx(
            fixed.simulated_time, rel=0.05
        )

    def test_max_dt_caps_the_jump(self):
        kwargs = dict(device="hdd", sync_mode="sync-on", delay=5.0)
        capped = simulate_scenario(
            make_scenario(
                "tiny", stepping=SteppingPolicy.adaptive(max_dt=0.5), **kwargs
            )
        )
        uncapped = simulate_scenario(
            make_scenario("tiny", stepping=ADAPTIVE, **kwargs)
        )
        # A 0.5 s cap forces >= ~9 extra steps across the ~4.6 s dead window.
        assert capped.n_steps > uncapped.n_steps

    def test_component_stats_stay_comparable(self):
        """Pressure/utilization accounting is time-weighted under adaptive."""
        kwargs = dict(device="hdd", sync_mode="sync-on", delay=5.0)
        fixed = simulate_scenario(make_scenario("tiny", **kwargs))
        adaptive = simulate_scenario(
            make_scenario("tiny", stepping=ADAPTIVE, **kwargs)
        )
        assert np.max(
            np.abs(
                np.asarray(adaptive.components.buffer_pressure)
                - np.asarray(fixed.components.buffer_pressure)
            )
        ) < 0.1
        assert adaptive.components.server_nic_utilization == pytest.approx(
            fixed.components.server_nic_utilization, rel=0.1
        )


class TestNextBound:
    def test_quiescent_before_start_is_unbounded(self):
        scenario = make_scenario("tiny")
        sim = IOPathSimulator(scenario)
        bound = sim.stepper.next_bound(0.0, sim.step_size, 0.05)
        assert bound == float("inf")

    def test_active_bound_is_at_least_the_base_step(self):
        scenario = make_scenario("tiny", stepping=ADAPTIVE)
        sim = IOPathSimulator(scenario)
        result = sim.run()
        assert result.n_steps > 0
        # After the run everything drained; re-query the bound: quiescent.
        assert sim.stepper.next_bound(result.simulated_time, sim.step_size, 0.05) == (
            float("inf")
        )


class TestCampaignThreading:
    def test_run_experiment_task_applies_stepping(self):
        """The worker-side task honors the serialized policy and restores
        the process default afterwards."""
        from repro.runner.executor import run_experiment_task

        payload = {
            "experiment_id": "table1",
            "scale": "tiny",
            "quick": True,
            "stepping": ADAPTIVE.to_dict(),
        }
        before = default_stepping_policy()
        result = run_experiment_task(payload, seed=None)
        assert default_stepping_policy() == before
        assert result["experiment_id"] == "table1"

    def test_fingerprints_separate_policies(self):
        from repro.runner.cache import fingerprint

        fp_default = fingerprint("figure5", "tiny", True)
        fp_adaptive = fingerprint(
            "figure5", "tiny", True, overrides={"stepping": ADAPTIVE.to_dict()}
        )
        assert fp_default != fp_adaptive
