"""Tests of the repro.perf package and the ``repro-io perf`` CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import PerfError
from repro.perf import (
    best_of_ns,
    check_regression,
    run_perf,
    scenarios_for_scale,
    validate_bench_document,
)
from repro.perf.compare import format_summary
from repro.perf.harness import CANONICAL_SCENARIOS, REFERENCE_BASELINE

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_stepper.json"


class TestTiming:
    def test_best_of_ns_returns_minimum_and_result(self):
        calls = []

        def runner():
            calls.append(1)
            return "done"

        best, result = best_of_ns(runner, repeats=3)
        assert len(calls) == 3
        assert best > 0
        assert result == "done"

    def test_setup_runs_untimed_per_repeat(self):
        seen = []
        best, result = best_of_ns(seen.append, repeats=2, setup=lambda: len(seen))
        assert seen == [0, 1]
        assert result is None

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            best_of_ns(lambda: None, repeats=0)


class TestHarness:
    def test_scenarios_for_scale(self):
        tiny = scenarios_for_scale("tiny")
        assert tiny and all(spec.scale == "tiny" for spec in tiny)
        assert scenarios_for_scale("reduced") == CANONICAL_SCENARIOS
        with pytest.raises(PerfError):
            scenarios_for_scale("paper")

    def test_run_perf_tiny_produces_valid_document(self):
        document = run_perf(scale="tiny", repeats=1)
        validate_bench_document(document)
        keys = set(document["scenarios"])
        assert keys == {spec.key for spec in scenarios_for_scale("tiny")}
        for key in keys & set(REFERENCE_BASELINE["scenarios"]):
            assert key in document["speedup"]
        assert "steps/s" in format_summary(document)

    def test_run_perf_profile_includes_phase_breakdown(self):
        document = run_perf(scale="tiny", repeats=1, profile=True)
        validate_bench_document(document)
        phases = document["phase_profile"]["phases"]
        assert "offer" in phases and "admission" in phases
        assert all(stats["calls"] > 0 for stats in phases.values())

    def test_rejects_bad_repeats(self):
        with pytest.raises(PerfError):
            run_perf(scale="tiny", repeats=0)


class TestSchema:
    def good_document(self):
        return {
            "schema": "repro-io/bench-stepper/v1",
            "python": "3.11.7",
            "scale": "tiny",
            "repeats": 3,
            "scenarios": {
                "active/x": {
                    "scale": "tiny", "kind": "active", "n_steps": 10,
                    "best_ns": 1000, "steps_per_sec": 100.0,
                },
            },
            "reference": {
                "label": "seed", "scenarios": {"active/x": {"steps_per_sec": 50.0}},
            },
            "speedup": {"active/x": 2.0},
        }

    def test_good_document_passes(self):
        validate_bench_document(self.good_document())

    @pytest.mark.parametrize("mutate, fragment", [
        (lambda d: d.update(schema="nope"), "$.schema"),
        (lambda d: d.pop("python"), "$.python"),
        (lambda d: d.update(repeats=0), "$.repeats"),
        (lambda d: d.update(scenarios={}), "$.scenarios"),
        (lambda d: d["scenarios"]["active/x"].update(kind="weird"), ".kind"),
        (lambda d: d["scenarios"]["active/x"].update(n_steps=0), ".n_steps"),
        (lambda d: d["scenarios"]["active/x"].update(steps_per_sec=-1), ".steps_per_sec"),
        (lambda d: d["reference"].pop("label"), "$.reference.label"),
        (lambda d: d.update(speedup={"missing/key": 1.0}), "$.speedup"),
    ])
    def test_violations_name_the_offending_path(self, mutate, fragment):
        document = self.good_document()
        mutate(document)
        with pytest.raises(PerfError) as err:
            validate_bench_document(document)
        assert fragment in str(err.value)


class TestCompare:
    def document(self, steps_per_sec):
        return {
            "schema": "repro-io/bench-stepper/v1",
            "python": "3.11.7",
            "repeats": 3,
            "scenarios": {
                "active/x": {
                    "scale": "tiny", "kind": "active", "n_steps": 10,
                    "best_ns": 1000, "steps_per_sec": steps_per_sec,
                },
            },
        }

    def test_green_when_within_margin(self):
        assert check_regression(self.document(80.0), self.document(100.0)) == []

    def test_fails_on_regression_beyond_margin(self):
        failures = check_regression(self.document(60.0), self.document(100.0))
        assert len(failures) == 1
        assert "active/x" in failures[0]

    def test_only_shared_scenarios_compared(self):
        current = self.document(10.0)
        baseline = self.document(100.0)
        baseline["scenarios"] = {
            "active/other": baseline["scenarios"]["active/x"],
        }
        assert check_regression(current, baseline) == []

    def test_rejects_bad_ratio(self):
        with pytest.raises(PerfError):
            check_regression(self.document(1.0), self.document(1.0), min_ratio=0.0)


class TestSchemaV2:
    """Batched entries: the v2 additions to the bench document."""

    def batched_document(self):
        return {
            "schema": "repro-io/bench-stepper/v2",
            "python": "3.11.7",
            "scale": "tiny",
            "repeats": 3,
            "scenarios": {
                "active/x": {
                    "scale": "tiny", "kind": "active", "n_steps": 10,
                    "best_ns": 1000, "steps_per_sec": 100.0,
                },
                "batched/x@b8": {
                    "scale": "tiny", "kind": "batched", "batch": 8,
                    "n_steps": 10, "best_ns": 1000, "steps_per_sec": 400.0,
                },
            },
        }

    def test_valid_v2_document_passes(self):
        validate_bench_document(self.batched_document())

    def test_explicit_schema_id_pins_the_version(self):
        document = self.batched_document()
        validate_bench_document(document, "repro-io/bench-stepper/v2")
        with pytest.raises(PerfError, match=r"\$\.schema"):
            validate_bench_document(document, "repro-io/bench-stepper/v1")

    def test_batched_kind_is_not_valid_v1(self):
        document = self.batched_document()
        document["schema"] = "repro-io/bench-stepper/v1"
        with pytest.raises(PerfError, match=r"\.kind"):
            validate_bench_document(document)

    def test_batched_entry_requires_batch_width(self):
        document = self.batched_document()
        del document["scenarios"]["batched/x@b8"]["batch"]
        with pytest.raises(PerfError, match=r"\.batch"):
            validate_bench_document(document)

    def test_unknown_schema_version_rejected(self):
        document = self.batched_document()
        document["schema"] = "repro-io/bench-stepper/v9"
        with pytest.raises(PerfError, match=r"\$\.schema"):
            validate_bench_document(document)


class TestBatchedHarness:
    def test_run_perf_with_batch_sizes(self):
        document = run_perf(scale="tiny", repeats=1, batch_sizes=[1, 2])
        validate_bench_document(document)
        for batch in (1, 2):
            entry = document["scenarios"][f"batched/tiny-hdd-sync-on@b{batch}"]
            assert entry["kind"] == "batched"
            assert entry["batch"] == batch
            assert entry["steps_per_sec"] > 0

    def test_rejects_bad_batch_size(self):
        with pytest.raises(PerfError):
            run_perf(scale="tiny", repeats=1, batch_sizes=[0])

    def test_cli_parses_repeated_batch_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["perf", "--batch", "8", "--batch", "32"])
        assert args.batch == [8, 32]
        assert build_parser().parse_args(["perf"]).batch is None

    def test_cli_rejects_bad_batch(self):
        with pytest.raises(SystemExit) as err:
            main(["perf", "--batch", "0"])
        assert err.value.code == 2


class TestCommittedBaseline:
    """The committed BENCH_stepper.json is the perf trajectory's anchor."""

    def test_committed_document_is_schema_valid(self):
        document = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        validate_bench_document(document, "repro-io/bench-stepper/v2")

    def test_committed_document_records_the_kernel_speedup(self):
        """The tentpole claim: >= 1.8x steps/sec on the canonical
        active-phase scenario, relative to the recorded seed kernel."""
        document = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        assert document["speedup"]["active/reduced-hdd-sync-on"] >= 1.8

    def test_committed_document_covers_the_ci_smoke_scenarios(self):
        document = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        for spec in scenarios_for_scale("tiny"):
            assert spec.key in document["scenarios"]

    def test_committed_batched_curve(self):
        """The batched-kernel claim: the committed curve covers
        B in {1, 8, 32, 128} and B=32 delivers >= 2x per-scenario
        throughput over the scalar active-phase kernel."""
        from repro.perf.harness import DEFAULT_BATCH_SIZES

        document = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
        scalar = float(
            document["scenarios"]["active/tiny-hdd-sync-on"]["steps_per_sec"]
        )
        for batch in DEFAULT_BATCH_SIZES:
            entry = document["scenarios"][f"batched/tiny-hdd-sync-on@b{batch}"]
            assert entry["batch"] == batch
        b32 = float(
            document["scenarios"]["batched/tiny-hdd-sync-on@b32"]["steps_per_sec"]
        )
        assert b32 >= 2.0 * scalar


class TestPerfCli:
    def test_parses_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["perf"])
        assert args.scale == "reduced"
        assert args.repeats == 5
        # The output/baseline defaults are mode-dependent (BENCH_stepper.json
        # for the stepper bench, BENCH_campaign.json with --campaign), so
        # argparse leaves them None and _command_perf resolves them.
        assert args.output is None
        assert args.baseline is None
        assert not args.campaign
        assert args.min_ratio == 0.7

    @pytest.mark.parametrize("argv", [
        ["perf", "--repeats", "0"],
        ["perf", "--repeats", "many"],
        ["perf", "--min-ratio", "0"],
        ["perf", "--min-ratio", "1.5"],
        ["perf", "--scale", "paper"],
    ])
    def test_bad_arguments_exit_2(self, argv):
        with pytest.raises(SystemExit) as err:
            main(argv)
        assert err.value.code == 2

    def test_writes_and_checks_against_itself(self, tmp_path, capsys):
        output = tmp_path / "BENCH_stepper.json"
        assert main([
            "perf", "--scale", "tiny", "--repeats", "1",
            "--output", str(output),
        ]) == 0
        document = json.loads(output.read_text(encoding="utf-8"))
        validate_bench_document(document)
        # A fresh measurement against its own file must pass the gate.
        assert main([
            "perf", "--scale", "tiny", "--repeats", "1",
            "--output", str(tmp_path / "fresh.json"),
            "--check", "--baseline", str(output), "--min-ratio", "0.1",
        ]) == 0
        assert "event=perf_gate status=green" in capsys.readouterr().err

    def test_check_fails_on_regression(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        document = run_perf(scale="tiny", repeats=1)
        for entry in document["scenarios"].values():
            entry["steps_per_sec"] = float(entry["steps_per_sec"]) * 1e6
        baseline.write_text(json.dumps(document) + "\n", encoding="utf-8")
        assert main([
            "perf", "--scale", "tiny", "--repeats", "1",
            "--output", str(tmp_path / "fresh.json"),
            "--check", "--baseline", str(baseline),
        ]) == 1
        assert "event=perf_regression" in capsys.readouterr().err

    def test_check_fails_when_baseline_missing(self, tmp_path, capsys):
        assert main([
            "perf", "--scale", "tiny", "--repeats", "1",
            "--output", str(tmp_path / "fresh.json"),
            "--check", "--baseline", str(tmp_path / "absent.json"),
        ]) == 1
        assert "not found" in capsys.readouterr().err

    def test_no_output_prints_document(self, capsys):
        assert main(["perf", "--scale", "tiny", "--repeats", "1", "--no-output"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out)
        validate_bench_document(document)


class TestProfilerReset:
    def test_reset_clears_counters(self):
        from repro.perf.counters import StepProfiler

        profiler = StepProfiler()
        with profiler.phase("x"):
            pass
        assert profiler.phases == ("x",)
        profiler.reset()
        assert profiler.phases == ()
        assert profiler.report() == {}


class TestPerfCliMalformedBaseline:
    def test_check_fails_on_malformed_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"schema": "wrong"}', encoding="utf-8")
        assert main([
            "perf", "--scale", "tiny", "--repeats", "1",
            "--output", str(tmp_path / "fresh.json"),
            "--check", "--baseline", str(baseline),
        ]) == 1
        assert "event=perf_fail" in capsys.readouterr().err


class TestPerfCliBaselineProtection:
    def test_check_does_not_overwrite_the_baseline(self, tmp_path, capsys):
        """The default --output and --baseline are the same committed file; a
        --check run must compare against the original content, not clobber it
        and compare the fresh run with itself."""
        baseline = tmp_path / "BENCH_stepper.json"
        document = run_perf(scale="tiny", repeats=1)
        original = json.dumps(document, indent=2, sort_keys=True) + "\n"
        baseline.write_text(original, encoding="utf-8")
        assert main([
            "perf", "--scale", "tiny", "--repeats", "1",
            "--output", str(baseline),
            "--check", "--baseline", str(baseline), "--min-ratio", "0.1",
        ]) == 0
        assert baseline.read_text(encoding="utf-8") == original
        assert "not overwriting" in capsys.readouterr().err


class TestCheckOverhead:
    """The telemetry-overhead gate (perf --check --max-overhead)."""

    @staticmethod
    def bench(steps_per_sec):
        return {
            "schema": "repro-io/bench-stepper/v1",
            "python": "3.11",
            "repeats": 1,
            "scenarios": {
                "tiny/active": {
                    "scale": "tiny", "kind": "active", "n_steps": 100,
                    "best_ns": 1000, "steps_per_sec": float(steps_per_sec),
                },
            },
        }

    def test_within_bound_passes(self):
        from repro.perf import check_overhead

        assert check_overhead(self.bench(99.0), self.bench(100.0), 0.02) == []

    def test_beyond_bound_fails_with_percentages(self):
        from repro.perf import check_overhead

        failures = check_overhead(self.bench(90.0), self.bench(100.0), 0.02)
        assert len(failures) == 1
        assert "tiny/active" in failures[0]
        assert "10.0%" in failures[0]
        assert "2.0%" in failures[0]

    def test_faster_than_baseline_passes(self):
        from repro.perf import check_overhead

        assert check_overhead(self.bench(120.0), self.bench(100.0), 0.0) == []

    def test_only_shared_scenarios_gate(self):
        from repro.perf import check_overhead

        current = self.bench(50.0)
        current["scenarios"]["other/active"] = current["scenarios"].pop(
            "tiny/active"
        )
        assert check_overhead(current, self.bench(100.0), 0.02) == []

    def test_rejects_bad_bound(self):
        from repro.perf import check_overhead

        for bound in (-0.1, 1.0, 2.0):
            with pytest.raises(PerfError, match="max_overhead"):
                check_overhead(self.bench(1.0), self.bench(1.0), bound)

    def test_cli_requires_check_with_max_overhead(self, capsys):
        assert main(["perf", "--scale", "tiny", "--repeats", "1",
                     "--no-output", "--max-overhead", "0.02"]) == 2
        assert "requires --check" in capsys.readouterr().err

    def test_cli_rejects_out_of_range_max_overhead(self):
        with pytest.raises(SystemExit):
            main(["perf", "--check", "--max-overhead", "1.5"])

    def test_cli_gate_with_overhead_bound(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        document = run_perf(scale="tiny", repeats=1)
        # A generous bound against a self-measured baseline must pass...
        for entry in document["scenarios"].values():
            entry["steps_per_sec"] = float(entry["steps_per_sec"]) * 0.5
        baseline.write_text(json.dumps(document) + "\n", encoding="utf-8")
        assert main([
            "perf", "--scale", "tiny", "--repeats", "1",
            "--output", str(tmp_path / "fresh.json"),
            "--check", "--baseline", str(baseline),
            "--min-ratio", "0.1", "--max-overhead", "0.99",
        ]) == 0
        err = capsys.readouterr().err
        assert "event=perf_gate status=green" in err
        assert "overhead" in err

    def test_cli_gate_fails_beyond_overhead_bound(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        document = run_perf(scale="tiny", repeats=1)
        # ...and an impossible baseline must trip the overhead gate.
        for entry in document["scenarios"].values():
            entry["steps_per_sec"] = float(entry["steps_per_sec"]) * 1e6
        baseline.write_text(json.dumps(document) + "\n", encoding="utf-8")
        assert main([
            "perf", "--scale", "tiny", "--repeats", "1",
            "--output", str(tmp_path / "fresh.json"),
            "--check", "--baseline", str(baseline),
            "--min-ratio", "0.0000001", "--max-overhead", "0.5",
        ]) == 1
        assert "event=perf_regression" in capsys.readouterr().err
