"""Tests for generator-based simulation processes."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import Completion, SimProcess, Timeout


def test_timeout_sequencing():
    sim = Simulator()
    trace = []

    def worker(proc):
        trace.append(("start", proc.sim.now))
        yield Timeout(1.0)
        trace.append(("mid", proc.sim.now))
        yield Timeout(2.0)
        trace.append(("end", proc.sim.now))
        return "done"

    proc = SimProcess.spawn(sim, worker)
    sim.run()
    assert trace == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]
    assert proc.finished
    assert proc.result == "done"


def test_completion_wakes_waiter():
    sim = Simulator()
    done = Completion(label="io")
    values = []

    def waiter(proc):
        value = yield done
        values.append((sim.now, value))

    SimProcess.spawn(sim, waiter)
    sim.schedule(5.0, lambda s: done.succeed(s, value=42))
    sim.run()
    assert values == [(5.0, 42)]


def test_completion_already_done_resumes_immediately():
    sim = Simulator()
    done = Completion()
    seen = []

    def setter(s):
        done.succeed(s, "ready")

    def waiter(proc):
        value = yield done
        seen.append(value)

    sim.schedule(1.0, setter)
    SimProcess.spawn(sim, waiter, start_delay=2.0)
    sim.run()
    assert seen == ["ready"]


def test_completion_cannot_succeed_twice():
    sim = Simulator()
    done = Completion()
    done.succeed(sim)
    with pytest.raises(SimulationError):
        done.succeed(sim)


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_waiting_on_another_process():
    sim = Simulator()
    order = []

    def child(proc):
        yield Timeout(2.0)
        order.append("child done")
        return 7

    def parent(proc, child_proc):
        value = yield child_proc
        order.append(("parent saw", value))

    child_proc = SimProcess.spawn(sim, child)
    SimProcess.spawn(sim, parent, child_proc)
    sim.run()
    assert order == ["child done", ("parent saw", 7)]


def test_invalid_yield_raises():
    sim = Simulator()

    def bad(proc):
        yield "nonsense"

    SimProcess.spawn(sim, bad)
    with pytest.raises(SimulationError):
        sim.run()
