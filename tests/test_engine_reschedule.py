"""Tests of Simulator.reschedule — the in-place retiming of pending events.

Rescheduling must (a) fire the callback exactly once at the final time,
(b) leave no cancelled corpses behind (the adaptive driver's heap no longer
grows on control-change re-anchoring), and (c) keep ordering deterministic.
"""

import pytest

from repro.errors import SchedulingError
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority


def make_recorder(log, tag):
    def _cb(sim):
        log.append((tag, sim.now))

    return _cb


class TestRescheduleBasics:
    def test_later_fires_once_at_new_time(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, make_recorder(log, "a"))
        sim.reschedule(event, 5.0)
        sim.run()
        assert log == [("a", 5.0)]
        assert sim.events_processed == 1

    def test_earlier_fires_once_at_new_time(self):
        sim = Simulator()
        log = []
        event = sim.schedule(5.0, make_recorder(log, "a"))
        sim.reschedule(event, 1.0)
        sim.run()
        assert log == [("a", 1.0)]
        assert sim.events_processed == 1

    def test_same_time_is_a_no_op(self):
        sim = Simulator()
        log = []
        event = sim.schedule(2.0, make_recorder(log, "a"))
        sim.reschedule(event, 2.0)
        assert sim.heap_size == 1
        sim.run()
        assert log == [("a", 2.0)]

    def test_chain_of_reschedules(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, make_recorder(log, "a"))
        sim.reschedule(event, 4.0)   # later (lazy)
        sim.reschedule(event, 2.0)   # earlier (new entry)
        sim.reschedule(event, 3.0)   # later again (lazy on the new entry)
        sim.run()
        assert log == [("a", 3.0)]
        assert sim.events_processed == 1

    def test_peek_next_time_reflects_lazy_retime(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda s: None)
        sim.schedule(2.0, lambda s: None)
        sim.reschedule(event, 3.0)
        assert sim.peek_next_time() == 2.0

    def test_pending_events_stays_consistent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda s: None)
        assert sim.pending_events == 1
        sim.reschedule(event, 5.0)
        assert sim.pending_events == 1
        sim.reschedule(event, 0.5)  # leaves one stale duplicate behind
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0
        assert sim.events_processed == 1


class TestRescheduleErrors:
    def test_rejects_past(self):
        sim = Simulator(start_time=10.0)
        event = sim.schedule(11.0, lambda s: None)
        with pytest.raises(SchedulingError):
            sim.reschedule(event, 9.0)

    def test_rejects_beyond_horizon(self):
        sim = Simulator(horizon=10.0)
        event = sim.schedule(1.0, lambda s: None)
        with pytest.raises(SchedulingError):
            sim.reschedule(event, 11.0)

    def test_rejects_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda s: None)
        event.cancel()
        with pytest.raises(SchedulingError):
            sim.reschedule(event, 2.0)

    def test_rejects_already_fired(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda s: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.reschedule(event, 2.0)


class TestHeapHygiene:
    def test_later_reschedules_leave_no_corpses(self):
        """Re-anchoring the same event (the adaptive driver's pattern) must
        keep the heap flat — cancel+schedule used to leave one corpse per
        re-anchor and trigger compactions."""
        sim = Simulator()
        event = sim.schedule(1.0, lambda s: None)
        for offset in range(2, 1002):
            sim.reschedule(event, float(offset))
        assert sim.heap_size == 1
        assert sim.pending_events == 1

    def test_earlier_reschedule_drops_stale_duplicate(self):
        sim = Simulator()
        log = []
        event = sim.schedule(5.0, make_recorder(log, "a"))
        sim.schedule(6.0, make_recorder(log, "late"))
        sim.reschedule(event, 1.0)
        assert sim.heap_size == 2 + 1  # live entry + stale duplicate + other
        sim.run()
        assert log == [("a", 1.0), ("late", 6.0)]
        assert sim.heap_size == 0

    def test_cancel_after_reschedule(self):
        sim = Simulator()
        log = []
        event = sim.schedule(1.0, make_recorder(log, "a"))
        sim.reschedule(event, 0.5)   # stale dup at 1.0, live at 0.5
        event.cancel()
        sim.schedule(2.0, make_recorder(log, "b"))
        sim.run()
        assert log == [("b", 2.0)]
        assert sim.pending_events == 0

    def test_drain_cancelled_removes_stale_entries(self):
        sim = Simulator()
        event = sim.schedule(5.0, lambda s: None)
        sim.reschedule(event, 1.0)
        removed = sim.drain_cancelled()
        assert removed == 1  # the stale duplicate
        assert sim.heap_size == 1
        assert sim.pending_events == 1

    def test_iter_pending_skips_stale_duplicates(self):
        sim = Simulator()
        event = sim.schedule(5.0, lambda s: None, label="step")
        sim.reschedule(event, 1.0)
        labels = [entry.label for entry in sim.iter_pending()]
        assert labels == ["step"]


class TestOrderingDeterminism:
    def test_rescheduled_event_keeps_its_sequence_number(self):
        """Ties at the same (time, priority) resolve by insertion seq; a
        rescheduled event keeps its original seq across retimes."""
        sim = Simulator()
        log = []
        first = sim.schedule(1.0, make_recorder(log, "first"))
        sim.schedule(3.0, make_recorder(log, "second"))
        sim.reschedule(first, 3.0)
        sim.run()
        # `first` was inserted before `second`, so it wins the tie at t=3
        # even though it was rescheduled afterwards.
        assert log == [("first", 3.0), ("second", 3.0)]

    def test_priorities_still_order_within_a_time(self):
        sim = Simulator()
        log = []
        normal = sim.schedule(2.0, make_recorder(log, "normal"),
                              priority=EventPriority.NORMAL)
        sim.schedule(2.0, make_recorder(log, "control"),
                     priority=EventPriority.CONTROL)
        sim.reschedule(normal, 2.0)
        sim.run()
        assert log == [("control", 2.0), ("normal", 2.0)]

    def test_reschedule_returns_the_event(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda s: None)
        assert sim.reschedule(event, 2.0) is event
        assert event.time == 2.0
