"""Tests for the lossless (credit-based / InfiniBand-like) transport extension."""

import pytest

from repro import units
from repro.config.network import NetworkConfig, TransportConfig
from repro.config.presets import grid5000_platform, make_scenario
from repro.core.experiment import TwoApplicationExperiment
from repro.errors import ConfigurationError
from repro.model.simulator import simulate_scenario


class TestCreditBasedTransport:
    def test_lossless_flag_default_off(self):
        assert TransportConfig().lossless is False

    def test_credit_based_disables_loss_machinery(self):
        transport = TransportConfig.credit_based()
        assert transport.lossless
        assert transport.collapse_penalty == 0.0
        assert transport.paced_timeout_hazard == 0.0
        assert transport.burst_escape_probability == 1.0
        assert transport.rwnd_overcommit == pytest.approx(1.0)

    def test_credit_based_accepts_overrides(self):
        transport = TransportConfig.credit_based(rto=0.5, window_max=2 * units.MiB)
        assert transport.rto == 0.5
        assert transport.window_max == 2 * units.MiB
        assert transport.lossless

    def test_validation_still_applies(self):
        with pytest.raises(ConfigurationError):
            TransportConfig.credit_based(rto=-1.0)


class TestInfinibandNetwork:
    def test_infiniband_preset(self):
        net = NetworkConfig.infiniband()
        assert net.transport.lossless
        assert net.client_nic_bw > units.gbit_per_s(10)
        assert "InfiniBand" in net.name

    def test_platform_accepts_ib_keys(self):
        for key in ("ib", "infiniband", "lossless"):
            platform = grid5000_platform("tiny", network=key)
            assert platform.network.transport.lossless, key

    def test_platform_rejects_unknown_network(self):
        with pytest.raises(ConfigurationError):
            grid5000_platform("tiny", network="token-ring")

    def test_make_scenario_with_infiniband(self):
        scenario = make_scenario("tiny", device="hdd", sync_mode="sync-on",
                                 network="infiniband")
        assert scenario.platform.network.transport.lossless


class TestLosslessBehaviour:
    """The paper's future-work question: does Incast survive a lossless fabric?"""

    @pytest.fixture(scope="class")
    def experiments(self):
        tcp = TwoApplicationExperiment("tiny", device="hdd", sync_mode="sync-on",
                                       network="10g")
        ib = TwoApplicationExperiment("tiny", device="hdd", sync_mode="sync-on",
                                      network="infiniband")
        return tcp, ib

    def test_no_window_collapses_on_lossless_fabric(self, experiments):
        _tcp, ib = experiments
        contended = ib.run_point(0.0)
        assert contended.total_window_collapses() == 0

    def test_tcp_fabric_still_collapses(self, experiments):
        tcp, _ib = experiments
        contended = tcp.run_point(0.05)
        assert contended.total_window_collapses() > 0

    def test_device_sharing_interference_remains(self, experiments):
        _tcp, ib = experiments
        contended = ib.run_point(0.0)
        factor = contended.write_time("A") / ib.alone_time()
        # The disk is still shared: ~2x slowdown, even without any Incast.
        assert 1.6 < factor < 2.6

    def test_alone_time_not_slower_than_tcp(self, experiments):
        tcp, ib = experiments
        assert ib.alone_time() <= tcp.alone_time() * 1.10
