"""Tests for the multi-application scenario builder and its simulation."""

import pytest

from repro.config.presets import make_multi_app_scenario, make_single_app_scenario
from repro.errors import ConfigurationError
from repro.model.simulator import simulate_scenario


class TestMakeMultiAppScenario:
    def test_default_three_applications(self):
        scenario = make_multi_app_scenario("tiny", n_apps=3, device="hdd",
                                           sync_mode="sync-on")
        assert [app.name for app in scenario.applications] == ["A", "B", "C"]
        assert len({app.name for app in scenario.applications}) == 3

    def test_platform_grows_to_fit_all_groups(self):
        scenario = make_multi_app_scenario("tiny", n_apps=4)
        needed = sum(app.n_nodes for app in scenario.applications)
        assert scenario.platform.n_client_nodes >= needed

    def test_start_times_applied(self):
        scenario = make_multi_app_scenario("tiny", n_apps=3, start_times=[0.0, 1.0, 2.5])
        assert [app.start_time for app in scenario.applications] == [0.0, 1.0, 2.5]

    def test_start_times_length_validated(self):
        with pytest.raises(ConfigurationError):
            make_multi_app_scenario("tiny", n_apps=3, start_times=[0.0, 1.0])

    def test_n_apps_validated(self):
        with pytest.raises(ConfigurationError):
            make_multi_app_scenario("tiny", n_apps=0)

    def test_partitioning_gives_disjoint_servers(self):
        scenario = make_multi_app_scenario("tiny", n_apps=2, partition_servers=True)
        targets = [set(app.target_servers) for app in scenario.applications]
        assert targets[0].isdisjoint(targets[1])
        assert all(t for t in targets)

    def test_all_groups_identical(self):
        scenario = make_multi_app_scenario("tiny", n_apps=3)
        patterns = {app.pattern for app in scenario.applications}
        sizes = {(app.n_nodes, app.procs_per_node) for app in scenario.applications}
        assert len(patterns) == 1
        assert len(sizes) == 1

    def test_many_apps_get_generated_names(self):
        scenario = make_multi_app_scenario(
            "tiny", n_apps=5, nodes_per_app=1, device="ram", sync_mode="sync-off"
        )
        assert len(scenario.applications) == 5
        assert scenario.applications[-1].name == "E"


class TestMultiAppInterference:
    """Interference grows with the number of concurrent applications."""

    @pytest.fixture(scope="class")
    def alone_time(self):
        scenario = make_single_app_scenario("tiny", device="hdd", sync_mode="sync-on",
                                            nodes_per_app=2, procs_per_node=4)
        return simulate_scenario(scenario).write_time("A")

    def _factor(self, n_apps, alone_time):
        scenario = make_multi_app_scenario(
            "tiny", n_apps=n_apps, device="hdd", sync_mode="sync-on",
            nodes_per_app=2, procs_per_node=4,
        )
        result = simulate_scenario(scenario)
        worst = max(result.write_time(app.name) for app in scenario.applications)
        return worst / alone_time

    def test_three_apps_interfere_more_than_two(self, alone_time):
        two = self._factor(2, alone_time)
        three = self._factor(3, alone_time)
        assert three > two > 1.5
        assert three > 2.4  # roughly proportional sharing of the backend
