"""Tests for the single-node (Table I) model."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.model.local import simulate_local_writes
from repro.storage import device_by_name


class TestLocalWrites:
    def test_single_writer_time_matches_device(self):
        hdd = device_by_name("hdd")
        result = simulate_local_writes(hdd, n_apps=1, bytes_per_app=512 * units.MiB)
        # Serial client-copy + device stages: a bit slower than the raw device.
        expected_min = 512 * units.MiB / hdd.write_bw
        assert result.mean_write_time >= expected_min
        assert result.mean_write_time < 2 * expected_min
        assert result.n_apps == 1

    def test_two_writers_slow_down(self):
        hdd = device_by_name("hdd")
        alone = simulate_local_writes(hdd, 1, bytes_per_app=256 * units.MiB)
        both = simulate_local_writes(hdd, 2, bytes_per_app=256 * units.MiB)
        slowdown = both.slowdown_versus(alone)
        assert slowdown > 2.0  # interleaving penalty on top of fair sharing

    def test_device_ordering_of_slowdowns(self):
        volumes = 256 * units.MiB
        slowdowns = {}
        for name in ("hdd", "ssd", "ram"):
            device = device_by_name(name)
            alone = simulate_local_writes(device, 1, bytes_per_app=volumes)
            both = simulate_local_writes(device, 2, bytes_per_app=volumes)
            slowdowns[name] = both.slowdown_versus(alone)
        assert slowdowns["hdd"] > slowdowns["ssd"] > slowdowns["ram"]
        assert slowdowns["ram"] < 2.0

    def test_staggered_starts(self):
        ram = device_by_name("ram")
        result = simulate_local_writes(
            ram, 2, bytes_per_app=256 * units.MiB, start_times=[0.0, 5.0]
        )
        # The second app starts after the first has finished: both run alone.
        assert result.write_times[0] == pytest.approx(result.write_times[1], rel=0.05)

    def test_as_dict(self):
        ram = device_by_name("ram")
        result = simulate_local_writes(ram, 2, bytes_per_app=64 * units.MiB)
        summary = result.as_dict()
        assert "write_time.0" in summary and "write_time.1" in summary

    def test_validation(self):
        ram = device_by_name("ram")
        with pytest.raises(ConfigurationError):
            simulate_local_writes(ram, 0)
        with pytest.raises(ConfigurationError):
            simulate_local_writes(ram, 1, bytes_per_app=0)
        with pytest.raises(ConfigurationError):
            simulate_local_writes(ram, 2, start_times=[0.0])
        with pytest.raises(ConfigurationError):
            simulate_local_writes(ram, 1, step=0)
