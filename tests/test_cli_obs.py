"""End-to-end tests of ``repro-io matrix --telemetry`` and ``repro-io obs``."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.export import validate_chrome_trace
from repro.obs.schema import validate_events_jsonl, validate_telemetry_document
from repro.runner.store import load_manifest


@pytest.fixture(scope="module")
def telemetry_run(tmp_path_factory):
    """One cold and one warm telemetry-carrying matrix run (shared cache)."""
    root = tmp_path_factory.mktemp("obsruns")
    cache = str(root / "cache")

    def run(store):
        assert main([
            "matrix", "--archetypes", "streaming,checkpoint",
            "--scale", "tiny", "--cache-dir", cache,
            "--store", str(store), "--telemetry", "--no-output",
        ]) == 0
        return next(p for p in store.iterdir() if p.is_dir())

    cold = run(root / "cold")
    warm = run(root / "warm")
    return cold, warm


class TestMatrixTelemetryFlag:
    def test_run_dir_carries_validated_telemetry(self, telemetry_run, capsys):
        cold, _ = telemetry_run
        capsys.readouterr()
        document = json.loads(
            (cold / "telemetry.json").read_text(encoding="utf-8")
        )
        validate_telemetry_document(document)
        assert document["run_id"] == cold.name
        events = (cold / "telemetry_events.jsonl").read_text(encoding="utf-8")
        validate_events_jsonl(events)

    def test_manifest_references_telemetry_and_tasks(self, telemetry_run):
        cold, _ = telemetry_run
        manifest = load_manifest(cold)
        assert manifest["telemetry"]["document"] == "telemetry.json"
        assert "telemetry.json" in manifest["artifacts"]
        assert "telemetry_events.jsonl" in manifest["artifacts"]
        assert manifest["tasks"]
        for record in manifest["tasks"].values():
            assert record["origin"] in ("computed", "cache")

    def test_warm_rerun_is_all_cache_hits(self, telemetry_run):
        _, warm = telemetry_run
        document = json.loads(
            (warm / "telemetry.json").read_text(encoding="utf-8")
        )
        counters = document["counters"]
        assert counters["cache.probe"] > 0
        assert counters["cache.hit"] == counters["cache.probe"]  # 100% hits
        assert counters.get("cache.miss", 0) == 0
        assert counters["executor.tasks.cached"] == counters["cache.probe"]
        assert "executor.tasks.completed" not in counters
        manifest = load_manifest(warm)
        assert all(
            record["origin"] == "cache"
            for record in manifest["tasks"].values()
        )

    def test_telemetry_with_no_store_is_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["matrix", "--archetypes", "streaming,checkpoint",
                  "--telemetry", "--no-store", "--no-output"])
        assert excinfo.value.code == 2
        assert "--no-store" in capsys.readouterr().err

    def test_parser_accepts_flag(self):
        args = build_parser().parse_args(
            ["matrix", "--archetypes", "streaming,checkpoint", "--telemetry"]
        )
        assert args.telemetry is True


class TestObsSummary:
    def test_summary_reports_utilization_and_cache(self, telemetry_run, capsys):
        cold, _ = telemetry_run
        assert main(["obs", "summary", str(cold)]) == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "utilization" in out
        assert "step phases" in out
        assert "engine.events.processed" in out

    def test_summary_on_plain_run_fails_cleanly(self, tmp_path, capsys):
        assert main(["obs", "summary", str(tmp_path)]) == 1
        assert "event=obs_failed" in capsys.readouterr().err


class TestObsExport:
    def test_export_writes_loadable_chrome_trace(self, telemetry_run,
                                                 tmp_path, capsys):
        cold, _ = telemetry_run
        out_file = tmp_path / "trace.json"
        assert main(["obs", "export", str(cold), "--output", str(out_file)]) == 0
        assert "event=trace_written" in capsys.readouterr().err
        trace = json.loads(out_file.read_text(encoding="utf-8"))
        validate_chrome_trace(trace)
        cats = {e.get("cat") for e in trace["traceEvents"] if e["ph"] == "X"}
        assert {"campaign", "task", "simulation", "phase"} <= cats

    def test_export_defaults_to_stdout(self, telemetry_run, capsys):
        cold, _ = telemetry_run
        assert main(["obs", "export", str(cold)]) == 0
        trace = json.loads(capsys.readouterr().out)
        validate_chrome_trace(trace)

    def test_export_rejects_unknown_format(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "export", "x", "--format", "xml"])


class TestObsDiff:
    def test_diff_cold_vs_warm(self, telemetry_run, capsys):
        cold, warm = telemetry_run
        assert main(["obs", "diff", str(cold), str(warm)]) == 0
        out = capsys.readouterr().out
        assert "telemetry diff" in out
        assert "cache.hit" in out  # cold run had zero hits, warm all hits

    def test_diff_missing_run_fails(self, telemetry_run, tmp_path, capsys):
        cold, _ = telemetry_run
        assert main(["obs", "diff", str(cold), str(tmp_path)]) == 1
        assert "event=obs_failed" in capsys.readouterr().err


class TestVerifyCacheEfficiency:
    def test_verify_reports_cache_efficiency(self, telemetry_run, capsys):
        _, warm = telemetry_run
        assert main(["verify", str(warm)]) == 0
        out = capsys.readouterr().out
        assert "1/1 runs verified" in out
        assert "cache efficiency: " in out
        assert "(100%)" in out
        assert "0.00s spent computing" in out

    def test_verify_stays_quiet_without_task_records(self, tmp_path, capsys):
        store = str(tmp_path / "runs")
        main(["matrix", "--archetypes", "streaming,checkpoint",
              "--scale", "tiny", "--store", store, "--no-output",
              "--no-cache"])
        capsys.readouterr()
        assert main(["verify", store]) == 0
        assert "cache efficiency" not in capsys.readouterr().out


class TestVerbosityFlags:
    def test_quiet_silences_progress(self, tmp_path, capsys):
        assert main(["--quiet", "matrix", "--archetypes",
                     "streaming,checkpoint", "--scale", "tiny",
                     "--store", str(tmp_path / "runs"), "--no-output",
                     "--no-cache"]) == 0
        assert capsys.readouterr().err == ""

    def test_progress_prints_by_default(self, tmp_path, capsys):
        assert main(["matrix", "--archetypes", "streaming,checkpoint",
                     "--scale", "tiny", "--store", str(tmp_path / "runs"),
                     "--no-output", "--no-cache"]) == 0
        err = capsys.readouterr().err
        assert "event=matrix_task" in err
        assert "event=matrix_persisted" in err

    def test_parser_accepts_verbose(self):
        args = build_parser().parse_args(["--verbose", "list"])
        assert args.verbose is True
