"""Schema validation of persisted telemetry documents and event logs."""

import pytest

from repro.errors import TelemetryError
from repro.obs.schema import validate_events_jsonl, validate_telemetry_document
from repro.obs.summary import TELEMETRY_DOCUMENT_NAME, TELEMETRY_EVENTS_NAME
from repro.obs.telemetry import Telemetry
from repro.runner.store import (
    TELEMETRY_DOCUMENT_ARTIFACT,
    TELEMETRY_EVENTS_ARTIFACT,
)


def sample_document():
    t = Telemetry(label="unit")
    t.count("cache.hit", 3)
    t.gauge("executor.jobs", 2)
    t.observe("sim.wall_s", 0.5)
    with t.span("campaign:tiny", category="campaign"):
        with t.span("task", category="task"):
            pass
    t.event("done")
    return t.to_document(run_id="run_1")


class TestDocumentValidation:
    def test_live_document_validates(self):
        document = sample_document()
        assert validate_telemetry_document(document) is document

    def test_rejects_non_dict(self):
        with pytest.raises(TelemetryError, match=r"\$"):
            validate_telemetry_document([])

    def test_rejects_wrong_schema_id(self):
        document = sample_document()
        document["schema"] = "repro-io/telemetry/v0"
        with pytest.raises(TelemetryError, match=r"\$\.schema"):
            validate_telemetry_document(document)

    def test_rejects_negative_duration(self):
        document = sample_document()
        document["duration_us"] = -1.0
        with pytest.raises(TelemetryError, match=r"\$\.duration_us"):
            validate_telemetry_document(document)

    def test_rejects_non_numeric_counter(self):
        document = sample_document()
        document["counters"]["cache.hit"] = "three"
        with pytest.raises(TelemetryError, match=r"\$\.counters"):
            validate_telemetry_document(document)

    def test_rejects_boolean_counter(self):
        document = sample_document()
        document["counters"]["cache.hit"] = True
        with pytest.raises(TelemetryError, match="must be a number"):
            validate_telemetry_document(document)

    def test_rejects_histogram_min_above_max(self):
        document = sample_document()
        document["histograms"]["sim.wall_s"]["min"] = 9.0
        with pytest.raises(TelemetryError, match="min must be <= max"):
            validate_telemetry_document(document)

    def test_rejects_duplicate_span_ids(self):
        document = sample_document()
        document["spans"].append(dict(document["spans"][0]))
        with pytest.raises(TelemetryError, match="unique"):
            validate_telemetry_document(document)

    def test_rejects_forward_parent_reference(self):
        document = sample_document()
        document["spans"][0]["parent"] = 99
        with pytest.raises(TelemetryError, match=r"\$\.spans\[0\]\.parent"):
            validate_telemetry_document(document)

    def test_rejects_unknown_category(self):
        document = sample_document()
        document["spans"][0]["category"] = "galaxy"
        with pytest.raises(TelemetryError, match="category"):
            validate_telemetry_document(document)

    def test_rejects_missing_n_events(self):
        document = sample_document()
        del document["n_events"]
        with pytest.raises(TelemetryError, match="n_events"):
            validate_telemetry_document(document)

    def test_json_round_trip_still_validates(self):
        import json

        document = json.loads(json.dumps(sample_document()))
        validate_telemetry_document(document)


class TestEventsValidation:
    def test_live_events_validate(self):
        t = Telemetry()
        t.event("cache_store", bytes=12)
        t.event("done")
        events = validate_events_jsonl(t.events_jsonl())
        assert [e["event"] for e in events] == ["cache_store", "done"]

    def test_empty_payload_is_no_events(self):
        assert validate_events_jsonl("") == []

    def test_blank_lines_skipped(self):
        assert validate_events_jsonl('\n{"ts_us": 1, "event": "x"}\n\n') != []

    def test_rejects_non_json_line(self):
        with pytest.raises(TelemetryError, match="line 1"):
            validate_events_jsonl("not json\n")

    def test_rejects_non_object_line(self):
        with pytest.raises(TelemetryError, match="JSON object"):
            validate_events_jsonl("[1, 2]\n")

    def test_rejects_missing_timestamp(self):
        with pytest.raises(TelemetryError, match="ts_us"):
            validate_events_jsonl('{"event": "x"}\n')

    def test_rejects_empty_event_name(self):
        with pytest.raises(TelemetryError, match="event"):
            validate_events_jsonl('{"ts_us": 1, "event": ""}\n')


class TestArtifactNameSync:
    def test_store_and_obs_agree_on_artifact_names(self):
        # runner.store deliberately does not import repro.obs; this pin keeps
        # the two name constants from drifting apart.
        assert TELEMETRY_DOCUMENT_ARTIFACT == TELEMETRY_DOCUMENT_NAME
        assert TELEMETRY_EVENTS_ARTIFACT == TELEMETRY_EVENTS_NAME
