"""Tests for repro.units."""

import pytest

from repro import units


class TestConstants:
    def test_binary_prefixes(self):
        assert units.KiB == 1024
        assert units.MiB == 1024**2
        assert units.GiB == 1024**3
        assert units.TiB == 1024**4

    def test_decimal_prefixes(self):
        assert units.KB == 1000
        assert units.MB == 1000**2
        assert units.GB == 1000**3

    def test_size_helpers(self):
        assert units.kib(2) == 2048
        assert units.mib(1.5) == 1.5 * 1024**2
        assert units.gib(3) == 3 * 1024**3
        assert units.tib(1) == 1024**4


class TestBandwidth:
    def test_gbit_per_s(self):
        assert units.gbit_per_s(10) == pytest.approx(1.25e9)
        assert units.gbit_per_s(1) == pytest.approx(1.25e8)

    def test_mbit_per_s(self):
        assert units.mbit_per_s(8) == pytest.approx(1e6)

    def test_mb_gb_per_s(self):
        assert units.mb_per_s(1) == units.MiB
        assert units.gb_per_s(2) == 2 * units.GiB


class TestTimeHelpers:
    def test_us_ms(self):
        assert units.us(1) == pytest.approx(1e-6)
        assert units.ms(250) == pytest.approx(0.25)

    def test_minutes_hours(self):
        assert units.minutes(2) == 120
        assert units.hours(1.5) == 5400


class TestHumanFormatting:
    def test_bytes_to_human(self):
        assert units.bytes_to_human(64 * units.MiB) == "64 MiB"
        assert units.bytes_to_human(1536) == "1.5 KiB"
        assert units.bytes_to_human(10) == "10 B"
        assert units.bytes_to_human(-2 * units.GiB) == "-2 GiB"

    def test_bandwidth_to_human(self):
        assert units.bandwidth_to_human(100 * units.MiB) == "100 MiB/s"

    def test_seconds_to_human(self):
        assert units.seconds_to_human(0) == "0 s"
        assert units.seconds_to_human(5e-4) == "500 us"
        assert units.seconds_to_human(0.25) == "250 ms"
        assert units.seconds_to_human(42.0) == "42 s"
        assert units.seconds_to_human(600) == "10 min"
        assert units.seconds_to_human(7200) == "2 h"
        assert units.seconds_to_human(-42.0) == "-42 s"


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("64MiB", 64 * units.MiB),
            ("64 MiB", 64 * units.MiB),
            ("256 KB", 256 * units.KB),
            ("256k", 256 * units.KiB),
            ("2g", 2 * units.GiB),
            ("1024", 1024.0),
            (512, 512.0),
            (1.5, 1.5),
        ],
    )
    def test_parse_size(self, text, expected):
        assert units.parse_size(text) == pytest.approx(expected)

    @pytest.mark.parametrize("bad", ["", "abc", "12 parsecs"])
    def test_parse_size_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            units.parse_size(bad)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("10Gbps", 1.25e9),
            ("1 gbit/s", 1.25e8),
            ("100 MB/s", 100 * units.MiB),
            ("100MiB/s", 100 * units.MiB),
            (42.0, 42.0),
        ],
    )
    def test_parse_bandwidth(self, text, expected):
        assert units.parse_bandwidth(text) == pytest.approx(expected)

    def test_parse_bandwidth_rejects_garbage(self):
        with pytest.raises(ValueError):
            units.parse_bandwidth("fast")
        with pytest.raises(ValueError):
            units.parse_bandwidth("")
