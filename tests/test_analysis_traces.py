"""Tests for the window/progress trace analytics (repro.analysis.traces)."""

import numpy as np
import pytest

from repro.analysis.traces import (
    compare_window_traces,
    progress_slowdown_point,
    window_statistics,
)
from repro.errors import AnalysisError
from repro.model.results import ApplicationResult, ComponentStats, RunResult
from repro.sim.timeseries import TimeSeries
from repro.sim.tracing import TraceConfig, TraceRecorder


def make_series(values, dt=1.0, name="window"):
    series = TimeSeries(name=name, unit="bytes")
    for i, value in enumerate(values):
        series.append(i * dt, float(value))
    return series


class TestWindowStatistics:
    def test_basic_statistics(self):
        stats = window_statistics(make_series([100, 200, 50, 400]))
        assert stats.maximum == 400
        assert stats.minimum == 50
        assert stats.final == 400
        assert stats.mean == pytest.approx(187.5)

    def test_collapse_fraction_uses_default_floor(self):
        # floor defaults to 10% of the peak (40); two samples are below it.
        stats = window_statistics(make_series([400, 30, 10, 400]))
        assert stats.collapse_fraction == pytest.approx(0.5)
        assert stats.collapsed(threshold_fraction=0.4)
        assert not stats.collapsed(threshold_fraction=0.6)

    def test_explicit_floor(self):
        stats = window_statistics(make_series([400, 30, 10, 400]), floor=5.0)
        assert stats.collapse_fraction == 0.0

    def test_empty_series_rejected(self):
        with pytest.raises(AnalysisError):
            window_statistics(make_series([]))


def progress_result(tiny_scenario, samples, app="A"):
    """RunResult whose recorder holds one synthetic progress series."""
    recorder = TraceRecorder(TraceConfig(record_windows=True))
    for t, fraction in samples:
        recorder.record(f"progress.{app}", t, fraction, unit="fraction")
    apps = {app: ApplicationResult(app, 0.0, samples[-1][0], 1e9, 0)}
    components = ComponentStats(
        client_nic_utilization=0.0,
        server_nic_utilization=0.0,
        server_utilization=np.zeros(1),
        device_utilization=np.zeros(1),
        buffer_pressure=np.zeros(1),
        total_window_collapses=0,
    )
    return RunResult(
        scenario=tiny_scenario, applications=apps, components=components,
        recorder=recorder, simulated_time=samples[-1][0], n_steps=len(samples),
        wall_time=0.0,
    )


class TestProgressSlowdownPoint:
    def test_steady_progress_never_slows(self, tiny_scenario):
        samples = [(t, t / 10.0) for t in range(11)]
        result = progress_result(tiny_scenario, samples)
        assert progress_slowdown_point(result, "A") == 1.0

    def test_late_slowdown_detected_near_the_end(self, tiny_scenario):
        # Full speed until 80% of the transfer, then a crawl.
        samples = [(t, min(t / 8.0, 0.8)) for t in range(9)]
        samples += [(9 + k, 0.8 + 0.02 * (k + 1)) for k in range(10)]
        result = progress_result(tiny_scenario, samples)
        point = progress_slowdown_point(result, "A", threshold=0.6)
        assert 0.7 <= point <= 0.85

    def test_blocked_from_the_start_reports_zero(self, tiny_scenario):
        # Nearly no progress for a long time, then a fast finish (the paper's
        # second application): the slowdown point is at the very beginning.
        samples = [(t, 0.002 * t) for t in range(20)]
        samples += [(20 + k, 0.04 + 0.24 * (k + 1)) for k in range(4)]
        result = progress_result(tiny_scenario, samples)
        point = progress_slowdown_point(result, "A", threshold=0.6)
        assert point <= 0.1

    def test_explicit_reference_rate(self, tiny_scenario):
        # Constant progress, but at only half the expected (alone) rate.
        samples = [(t, t / 20.0) for t in range(21)]
        result = progress_result(tiny_scenario, samples)
        assert progress_slowdown_point(result, "A", reference_rate=0.1) == pytest.approx(0.0)
        assert progress_slowdown_point(result, "A", reference_rate=0.05) == 1.0

    def test_invalid_reference_rate_rejected(self, tiny_scenario):
        samples = [(t, t / 10.0) for t in range(11)]
        result = progress_result(tiny_scenario, samples)
        with pytest.raises(AnalysisError):
            progress_slowdown_point(result, "A", reference_rate=0.0)

    def test_too_few_samples_rejected(self, tiny_scenario):
        result = progress_result(tiny_scenario, [(0.0, 0.0), (1.0, 1.0)])
        with pytest.raises(AnalysisError):
            progress_slowdown_point(result, "A")

    def test_flat_tail_after_completion_is_ignored(self, tiny_scenario):
        # Healthy transfer that completes at t=10 and then idles: the idle
        # tail must not be read as a slowdown.
        samples = [(t, min(t / 10.0, 1.0)) for t in range(30)]
        result = progress_result(tiny_scenario, samples)
        assert progress_slowdown_point(result, "A") == 1.0

    def test_integration_second_application_slows_earlier(self, tiny_traced_result):
        first = progress_slowdown_point(tiny_traced_result, "A")
        second = progress_slowdown_point(tiny_traced_result, "B")
        assert second <= first + 0.05


class TestCompareWindowTraces:
    def test_collects_all_window_series(self, tiny_traced_result):
        stats = compare_window_traces(tiny_traced_result)
        assert stats
        assert all(name.startswith("window.") for name in stats)
