"""Chrome trace_event export: structure, lane assignment, validation."""

import pytest

from repro.errors import TelemetryError
from repro.obs.export import to_chrome_trace, validate_chrome_trace
from repro.obs.telemetry import Telemetry


def document_with_overlap():
    """Two overlapping task spans on one track plus a campaign span."""
    t = Telemetry(label="export")
    t.count("cache.hit", 2)
    anchor = t.add_span("campaign:tiny", "campaign", 0.0, 100.0)
    t.add_span("task_a", "task", 10.0, 50.0, parent=anchor, track="tasks")
    t.add_span("task_b", "task", 30.0, 50.0, parent=anchor, track="tasks")
    t.add_span("task_c", "task", 61.0, 10.0, parent=anchor, track="tasks")
    return t.to_document(run_id="run_x")


class TestToChromeTrace:
    def test_trace_validates(self):
        trace = to_chrome_trace(document_with_overlap())
        assert validate_chrome_trace(trace) is trace

    def test_span_becomes_complete_event(self):
        trace = to_chrome_trace(document_with_overlap())
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in xs}
        assert {"campaign:tiny", "task_a", "task_b", "task_c"} <= names
        task_a = next(e for e in xs if e["name"] == "task_a")
        assert task_a["ts"] == 10.0
        assert task_a["dur"] == 50.0
        assert task_a["cat"] == "task"
        assert task_a["args"]["parent_span_id"] == 1

    def test_overlapping_spans_get_distinct_lanes(self):
        trace = to_chrome_trace(document_with_overlap())
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        a = next(e for e in xs if e["name"] == "task_a")
        b = next(e for e in xs if e["name"] == "task_b")
        c = next(e for e in xs if e["name"] == "task_c")
        assert a["tid"] != b["tid"]  # overlap -> different lanes
        assert c["tid"] == a["tid"]  # c starts after a ended -> lane reused

    def test_process_and_thread_metadata_present(self):
        trace = to_chrome_trace(document_with_overlap())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = [e["args"]["name"] for e in meta]
        assert "repro-io export" in names
        assert any(n.startswith("tasks/") for n in names)

    def test_counters_emitted_as_counter_sample(self):
        trace = to_chrome_trace(document_with_overlap())
        counter = next(e for e in trace["traceEvents"] if e["ph"] == "C")
        assert counter["args"]["cache.hit"] == 2.0

    def test_other_data_carries_identity(self):
        trace = to_chrome_trace(document_with_overlap())
        assert trace["otherData"]["run_id"] == "run_x"
        assert trace["displayTimeUnit"] == "ms"

    def test_malformed_document_rejected_before_export(self):
        with pytest.raises(TelemetryError):
            to_chrome_trace({"schema": "nope"})

    def test_empty_registry_exports_metadata_only(self):
        trace = to_chrome_trace(Telemetry().to_document())
        validate_chrome_trace(trace)
        assert all(e["ph"] == "M" for e in trace["traceEvents"])


class TestValidateChromeTrace:
    def test_rejects_non_object(self):
        with pytest.raises(TelemetryError, match=r"\$"):
            validate_chrome_trace([])

    def test_rejects_empty_event_array(self):
        with pytest.raises(TelemetryError, match="traceEvents"):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_unknown_phase_code(self):
        trace = to_chrome_trace(document_with_overlap())
        trace["traceEvents"][0]["ph"] = "Z"
        with pytest.raises(TelemetryError, match=r"\.ph"):
            validate_chrome_trace(trace)

    def test_rejects_negative_duration(self):
        trace = to_chrome_trace(document_with_overlap())
        event = next(e for e in trace["traceEvents"] if e["ph"] == "X")
        event["dur"] = -5
        with pytest.raises(TelemetryError, match=r"\.dur"):
            validate_chrome_trace(trace)

    def test_rejects_missing_tid(self):
        trace = to_chrome_trace(document_with_overlap())
        del trace["traceEvents"][0]["tid"]
        with pytest.raises(TelemetryError, match=r"\.tid"):
            validate_chrome_trace(trace)
