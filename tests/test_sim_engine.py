"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import EventPriority


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda s: order.append("b"))
        sim.schedule(1.0, lambda s: order.append("a"))
        sim.schedule(3.0, lambda s: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_priority_breaks_ties(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda s: order.append("observe"), priority=EventPriority.OBSERVE)
        sim.schedule(1.0, lambda s: order.append("control"), priority=EventPriority.CONTROL)
        sim.schedule(1.0, lambda s: order.append("normal"), priority=EventPriority.NORMAL)
        sim.run()
        assert order == ["control", "normal", "observe"]

    def test_fifo_among_equal_priority(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.schedule(1.0, lambda s, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule(0.5, lambda s: None)

    def test_cannot_schedule_beyond_horizon(self):
        sim = Simulator(horizon=10.0)
        with pytest.raises(SchedulingError):
            sim.schedule(11.0, lambda s: None)

    def test_negative_start_time(self):
        sim = Simulator(start_time=-5.0)
        seen = []
        sim.schedule(-4.0, lambda s: seen.append(s.now))
        sim.schedule(0.0, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [-4.0, 0.0]

    def test_schedule_after(self):
        sim = Simulator()
        seen = []
        sim.schedule_after(2.5, lambda s: seen.append(s.now))
        sim.run()
        assert seen == [2.5]
        with pytest.raises(SchedulingError):
            sim.schedule_after(-1.0, lambda s: None)


class TestExecution:
    def test_run_until(self):
        sim = Simulator()
        seen = []
        for t in [1.0, 2.0, 3.0]:
            sim.schedule(t, lambda s: seen.append(s.now))
        end = sim.run(until=2.0)
        assert seen == [1.0, 2.0]
        assert end == 2.0
        assert sim.pending_events == 1

    def test_run_until_before_now_raises(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_stop(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: s.stop("done early"))
        sim.schedule(2.0, lambda s: pytest.fail("should not run"))
        sim.run()
        assert sim.stop_reason == "done early"
        assert sim.now == 1.0

    def test_max_events_guard(self):
        sim = Simulator()

        def reschedule(s):
            s.schedule_after(0.1, reschedule)

        sim.schedule(0.1, reschedule)
        with pytest.raises(SimulationError):
            sim.run(max_events=50)

    def test_step(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        assert sim.step() is True
        assert sim.step() is False
        assert sim.events_processed == 1

    def test_cancelled_events_are_skipped(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda s: seen.append("cancelled"))
        sim.schedule(2.0, lambda s: seen.append("kept"))
        event.cancel()
        sim.run()
        assert seen == ["kept"]

    def test_drain_cancelled(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda s: None) for i in range(4)]
        events[0].cancel()
        events[2].cancel()
        removed = sim.drain_cancelled()
        assert removed == 2
        assert sim.pending_events == 2

    def test_heap_compacts_when_cancelled_events_dominate(self):
        """Cancelling more than half of a large heap triggers a compaction."""
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda s: None) for i in range(100)]
        assert sim.heap_size == 100
        # Cancel just under the trigger: nothing is compacted yet.
        for event in events[:50]:
            event.cancel()
        assert sim.heap_size == 100
        assert sim.pending_events == 50
        # One more cancellation tips the dead fraction over 1/2.
        events[50].cancel()
        assert sim.heap_size == 49
        assert sim.pending_events == 49

    def test_small_heaps_are_not_compacted(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda s: None) for i in range(10)]
        for event in events[:9]:
            event.cancel()
        assert sim.heap_size == 10  # below the compaction minimum
        assert sim.pending_events == 1
        sim.run()
        assert sim.events_processed == 1

    def test_cancel_after_fire_keeps_counts_consistent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda s: None)
        sim.run()
        event.cancel()  # late cancel of an already-fired event
        assert sim.pending_events == 0
        assert sim.heap_size == 0

    def test_double_cancel_is_counted_once(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda s: None) for i in range(80)]
        for _ in range(3):
            events[0].cancel()
        assert sim.pending_events == 79
        # The remaining schedule/run machinery still sees a consistent count.
        for event in events[1:41]:
            event.cancel()
        assert sim.pending_events == 39
        assert sim.heap_size == 39  # compaction fired exactly at the trigger
        sim.run()
        assert sim.events_processed == 39

    def test_peek_next_time(self):
        sim = Simulator()
        assert sim.peek_next_time() is None
        sim.schedule(3.0, lambda s: None)
        assert sim.peek_next_time() == 3.0


class TestPeriodic:
    def test_periodic_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(1.0, lambda s: ticks.append(s.now))
        sim.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_periodic_stop_when(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(
            1.0, lambda s: ticks.append(s.now), stop_when=lambda s: len(ticks) >= 3
        )
        sim.run(until=10.0)
        assert len(ticks) == 3

    def test_periodic_requires_positive_period(self):
        sim = Simulator()
        with pytest.raises(SchedulingError):
            sim.schedule_periodic(0.0, lambda s: None)

    def test_run_not_reentrant(self):
        sim = Simulator()

        def nested(s):
            with pytest.raises(SimulationError):
                s.run()

        sim.schedule(1.0, nested)
        sim.run()
