"""Unit tests for the Incast / flow-control diagnosis."""

import numpy as np
import pytest

from repro.core.flowcontrol import diagnose_flow_control
from repro.errors import AnalysisError
from repro.model.results import ApplicationResult, ComponentStats, RunResult
from repro.sim.tracing import TraceConfig, TraceRecorder


def make_result(tiny_scenario, *, collapses_a=0, collapses_b=0, pressure=0.0,
                simulated_time=10.0, window_trace=None):
    recorder = TraceRecorder(TraceConfig(record_windows=True))
    if window_trace is not None:
        for t, v in window_trace:
            recorder.record("window.B.rank0.server0", t, v, unit="bytes")
    apps = {
        "A": ApplicationResult("A", 0.0, simulated_time, 1e9, collapses_a),
        "B": ApplicationResult("B", 0.0, simulated_time, 1e9, collapses_b),
    }
    components = ComponentStats(
        client_nic_utilization=0.2,
        server_nic_utilization=0.2,
        server_utilization=np.full(4, 0.5),
        device_utilization=np.full(4, 0.5),
        buffer_pressure=np.full(4, pressure),
        total_window_collapses=collapses_a + collapses_b,
    )
    return RunResult(
        scenario=tiny_scenario,
        applications=apps,
        components=components,
        recorder=recorder,
        simulated_time=simulated_time,
        n_steps=100,
        wall_time=0.01,
    )


class TestDetection:
    def test_quiet_run_is_not_incast(self, tiny_scenario):
        diagnosis = diagnose_flow_control(make_result(tiny_scenario))
        assert not diagnosis.incast_detected
        assert diagnosis.collapse_rate == 0.0

    def test_collapses_plus_pressure_is_incast(self, tiny_scenario):
        result = make_result(tiny_scenario, collapses_a=50, collapses_b=500, pressure=0.9)
        diagnosis = diagnose_flow_control(result)
        assert diagnosis.incast_detected
        assert diagnosis.buffer_pressure == pytest.approx(0.9)

    def test_collapses_without_pressure_is_not_incast(self, tiny_scenario):
        result = make_result(tiny_scenario, collapses_a=50, collapses_b=500, pressure=0.1)
        assert not diagnose_flow_control(result).incast_detected

    def test_thresholds_are_configurable(self, tiny_scenario):
        result = make_result(tiny_scenario, collapses_a=5, collapses_b=5, pressure=0.3)
        strict = diagnose_flow_control(result)
        lenient = diagnose_flow_control(
            result, collapse_rate_threshold=0.1, pressure_threshold=0.1
        )
        assert not strict.incast_detected
        assert lenient.incast_detected

    def test_empty_run_rejected(self, tiny_scenario):
        result = make_result(tiny_scenario)
        result.applications = {}
        with pytest.raises(AnalysisError):
            diagnose_flow_control(result)


class TestVictimAndUnfairness:
    def test_victim_is_the_most_collapsed_application(self, tiny_scenario):
        result = make_result(tiny_scenario, collapses_a=10, collapses_b=900, pressure=0.9)
        diagnosis = diagnose_flow_control(result)
        assert diagnosis.victim == "B"

    def test_balanced_collapses_have_no_single_victim(self, tiny_scenario):
        result = make_result(tiny_scenario, collapses_a=450, collapses_b=460, pressure=0.9)
        assert diagnose_flow_control(result).victim is None

    def test_unfairness_ratio(self, tiny_scenario):
        result = make_result(tiny_scenario, collapses_a=10, collapses_b=100, pressure=0.9)
        assert diagnose_flow_control(result).unfairness_ratio() == pytest.approx(10.0)

    def test_unfairness_ratio_with_zero_collapses(self, tiny_scenario):
        assert diagnose_flow_control(make_result(tiny_scenario)).unfairness_ratio() == 1.0
        one_sided = make_result(tiny_scenario, collapses_b=10)
        assert diagnose_flow_control(one_sided).unfairness_ratio() == float("inf")


class TestWindowTraces:
    def test_min_window_fraction_from_trace(self, tiny_scenario):
        trace = [(0.0, 100e3), (1.0, 120e3), (2.0, 4e3), (3.0, 110e3)]
        result = make_result(tiny_scenario, collapses_b=600, pressure=0.9,
                             window_trace=trace)
        diagnosis = diagnose_flow_control(result)
        assert diagnosis.min_window_fraction == pytest.approx(4e3 / 120e3)

    def test_describe_lists_per_application_collapses(self, tiny_scenario):
        result = make_result(tiny_scenario, collapses_a=5, collapses_b=50, pressure=0.9)
        text = diagnose_flow_control(result).describe()
        assert "collapses[A]: 5" in text
        assert "collapses[B]: 50" in text
