"""Tests for the paper reference data (repro.analysis.paper)."""

import pytest

from repro.analysis import paper
from repro.errors import AnalysisError


class TestTable1Data:
    def test_all_devices_present(self):
        assert set(paper.TABLE1) == {"HDD", "SSD", "RAM"}

    def test_reported_slowdowns_match_reported_times(self):
        for row in paper.TABLE1.values():
            assert row.consistent(), row

    def test_slowdown_ordering(self):
        assert (
            paper.TABLE1["HDD"].slowdown
            > paper.TABLE1["SSD"].slowdown
            > paper.TABLE1["RAM"].slowdown
        )

    def test_expected_slowdown_lookup_is_case_insensitive(self):
        assert paper.expected_slowdown("hdd") == pytest.approx(2.49)
        assert paper.expected_slowdown("Ssd") == pytest.approx(1.96)
        assert paper.expected_slowdown("nvme") is None


class TestTable2Data:
    def test_server_counts(self):
        assert sorted(paper.TABLE2) == [4, 8, 12, 24]

    def test_factors_near_two(self):
        for factor in paper.TABLE2.values():
            assert 1.9 <= factor <= 2.4


class TestClaims:
    def test_every_experiment_has_at_least_one_claim(self):
        for experiment_id in paper.EXPERIMENT_TITLES:
            assert paper.claims_for(experiment_id), experiment_id

    def test_claim_ids_are_unique(self):
        ids = [claim.claim_id for claim in paper.CLAIMS]
        assert len(ids) == len(set(ids))

    def test_claim_ids_are_prefixed_with_their_experiment(self):
        for claim in paper.CLAIMS:
            assert claim.claim_id.startswith(claim.experiment_id + ".")

    def test_claims_for_unknown_experiment_is_empty(self):
        assert paper.claims_for("figure99") == []

    def test_claim_by_id(self):
        claim = paper.claim_by_id("figure5.one_gig_flat_sync_off")
        assert claim.experiment_id == "figure5"
        assert "1G" in claim.statement or "1 G" in claim.statement

    def test_claim_by_id_unknown_raises(self):
        with pytest.raises(AnalysisError):
            paper.claim_by_id("figure5.nonexistent")

    def test_every_claim_names_a_paper_section(self):
        for claim in paper.CLAIMS:
            assert claim.section


class TestReferenceTables:
    def test_reference_tables_shapes(self):
        tables = paper.paper_reference_tables()
        assert {"table1", "table2"} <= set(tables)
        assert len(tables["table1"]) == 3
        assert len(tables["table2"]) == 4

    def test_reference_rows_are_flat_dicts(self):
        tables = paper.paper_reference_tables()
        for rows in tables.values():
            for row in rows:
                assert all(isinstance(v, (int, float, str)) for v in row.values())
