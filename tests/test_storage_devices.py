"""Tests for the backend device models."""

import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.storage import DEVICE_PRESETS, device_by_name
from repro.storage.device import DeviceKind, DeviceSpec
from repro.storage.hdd import hdd_7200rpm
from repro.storage.nullaio import null_aio
from repro.storage.ram import ram_disk
from repro.storage.ssd import sata_ssd


class TestPresets:
    def test_lookup_by_name(self):
        assert device_by_name("hdd").kind is DeviceKind.HDD
        assert device_by_name("disk").kind is DeviceKind.HDD
        assert device_by_name("SSD").kind is DeviceKind.SSD
        assert device_by_name("memory").kind is DeviceKind.RAM
        assert device_by_name("null-aio").kind is DeviceKind.NULL

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            device_by_name("floppy")

    def test_all_presets_constructible(self):
        for factory in set(DEVICE_PRESETS.values()):
            spec = factory()
            assert isinstance(spec, DeviceSpec)

    def test_relative_speeds(self):
        assert ram_disk().write_bw > sata_ssd().write_bw > hdd_7200rpm().write_bw
        assert hdd_7200rpm().positioning_cost > sata_ssd().positioning_cost
        assert ram_disk().positioning_cost == 0.0
        assert null_aio().is_unlimited


class TestBandwidthLaw:
    def test_single_stream_has_no_penalty(self):
        hdd = hdd_7200rpm()
        assert hdd.effective_write_bw(1, 64 * units.KiB) == pytest.approx(hdd.write_bw)

    def test_more_streams_reduce_bandwidth(self):
        hdd = hdd_7200rpm()
        one = hdd.effective_write_bw(1, 1 * units.MiB)
        two = hdd.effective_write_bw(2, 1 * units.MiB)
        many = hdd.effective_write_bw(64, 1 * units.MiB)
        assert one > two > many > 0

    def test_larger_granularity_recovers_bandwidth(self):
        hdd = hdd_7200rpm()
        small = hdd.effective_write_bw(16, 64 * units.KiB)
        large = hdd.effective_write_bw(16, 1 * units.MiB)
        assert large > small

    def test_granularity_capped_by_interleave_cap(self):
        hdd = hdd_7200rpm()
        at_cap = hdd.effective_write_bw(2, hdd.interleave_granule_cap)
        beyond = hdd.effective_write_bw(2, 100 * units.GiB)
        assert beyond == pytest.approx(at_cap)

    def test_ram_immune_to_interleaving(self):
        ram = ram_disk()
        assert ram.effective_write_bw(64, 4 * units.KiB) == pytest.approx(ram.write_bw)

    def test_null_is_unlimited(self):
        assert null_aio().effective_write_bw(100, 1.0) == float("inf")
        assert null_aio().write_time(units.GiB) == 0.0

    def test_random_bw_worse_than_interleaved(self):
        hdd = hdd_7200rpm()
        assert hdd.effective_random_bw(64 * units.KiB) <= hdd.effective_write_bw(
            4, 64 * units.KiB
        )

    def test_write_time(self):
        hdd = hdd_7200rpm()
        t = hdd.write_time(hdd.write_bw)  # one second of sequential writing
        assert t == pytest.approx(1.0)

    def test_invalid_inputs(self):
        hdd = hdd_7200rpm()
        with pytest.raises(ConfigurationError):
            hdd.effective_write_bw(2, 0)
        with pytest.raises(ConfigurationError):
            hdd.effective_random_bw(-1)
        with pytest.raises(ConfigurationError):
            hdd.write_time(-5)
        with pytest.raises(ConfigurationError):
            DeviceSpec(kind=DeviceKind.HDD, name="bad", write_bw=0)

    def test_with_write_bw(self):
        slow = hdd_7200rpm().with_write_bw(10 * units.MiB)
        assert slow.write_bw == 10 * units.MiB

    def test_describe(self):
        assert "HDD" in hdd_7200rpm().describe()
        assert "null" in null_aio().describe().lower()


class TestTableICalibration:
    """The device parameters are calibrated against the paper's Table I."""

    def test_hdd_interleaving_penalty_band(self):
        hdd = hdd_7200rpm()
        # Two interleaved streams should cost roughly 20-35% of the bandwidth,
        # which is what turns fair sharing (2x) into the paper's 2.49x.
        ratio = hdd.effective_write_bw(2, 4 * units.MiB) / hdd.write_bw
        assert 0.6 < ratio < 0.85

    def test_ssd_penalty_is_small(self):
        ssd = sata_ssd()
        ratio = ssd.effective_write_bw(2, 4 * units.MiB) / ssd.write_bw
        assert ratio > 0.8
