"""Property-based tests for the newer building blocks.

Complements ``test_properties.py`` (which covers the allocation, striping,
device and metric primitives) with invariants of the pieces added on top of
them: markdown table export, the coordination schedule, the multi-application
scenario builder, and the credit-based transport preset.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.tables import rows_to_markdown
from repro.config.network import TransportConfig
from repro.config.presets import make_multi_app_scenario
from repro.config.presets import make_scenario
from repro.mitigation.scheduling import coordinated_start_times

_KEY = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)
_VALUE = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.booleans(),
    st.text(alphabet=string.ascii_letters + " ", max_size=12),
)


@settings(max_examples=50, deadline=None)
@given(rows=st.lists(st.dictionaries(_KEY, _VALUE, min_size=1, max_size=5),
                     min_size=1, max_size=8))
def test_markdown_table_has_one_line_per_row_plus_header(rows):
    text = rows_to_markdown(rows)
    lines = text.splitlines()
    assert len(lines) == len(rows) + 2
    # every line has the same number of column separators
    pipes = {line.count("|") for line in lines}
    assert len(pipes) == 1


@settings(max_examples=40, deadline=None)
@given(
    delta=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    alone_a=st.floats(min_value=0.1, max_value=100.0),
    alone_b=st.floats(min_value=0.1, max_value=100.0),
    slack=st.floats(min_value=0.0, max_value=5.0),
)
def test_coordinated_phases_never_overlap(tiny_two_app_scenario, delta, alone_a,
                                          alone_b, slack):
    alone = {"A": alone_a, "B": alone_b}
    starts = coordinated_start_times(tiny_two_app_scenario, delta, alone, slack=slack)
    intervals = sorted(
        (starts[name], starts[name] + alone[name]) for name in starts
    )
    for (start_1, end_1), (start_2, _end_2) in zip(intervals, intervals[1:]):
        assert start_2 >= end_1 + slack - 1e-9
    # Nobody is scheduled before it asked to run.
    assert starts["A"] >= 0.0 - 1e-9
    assert starts["B"] >= delta - 1e-9


@pytest.fixture(scope="module")
def tiny_two_app_scenario():
    return make_scenario("tiny", device="hdd", sync_mode="sync-on")


@settings(max_examples=20, deadline=None)
@given(n_apps=st.integers(min_value=1, max_value=6))
def test_multi_app_scenarios_use_disjoint_node_ranges(n_apps):
    scenario = make_multi_app_scenario(
        "tiny", n_apps=n_apps, nodes_per_app=1, device="ram", sync_mode="sync-off"
    )
    ranges = scenario.node_ranges()
    assert len(ranges) == n_apps
    for (start_1, end_1), (start_2, _end_2) in zip(ranges, ranges[1:]):
        assert end_1 <= start_2
    assert ranges[-1][1] <= scenario.platform.n_client_nodes


@settings(max_examples=30, deadline=None)
@given(
    rto=st.floats(min_value=1e-3, max_value=2.0),
    window_max_kib=st.integers(min_value=64, max_value=4096),
)
def test_credit_based_transport_keeps_overrides_and_stays_lossless(rto, window_max_kib):
    transport = TransportConfig.credit_based(rto=rto, window_max=window_max_kib * 1024.0)
    assert transport.lossless
    assert transport.rto == pytest.approx(rto)
    assert transport.window_max == pytest.approx(window_max_kib * 1024.0)
    assert transport.collapse_penalty == 0.0
    assert transport.incast_window_threshold > 0
