"""Tests for the server receive buffers (admission and drain)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.network.incast import ServerBuffers


def make_buffers(n_servers=2, capacity=1000.0, conns_per_server=3):
    conn_server = np.repeat(np.arange(n_servers), conns_per_server)
    return ServerBuffers(n_servers=n_servers, capacity_bytes=capacity, conn_server=conn_server)


class TestConstruction:
    def test_basic_properties(self):
        buffers = make_buffers()
        assert buffers.n_connections == 6
        assert np.allclose(buffers.free_space(), 1000.0)
        assert np.allclose(buffers.occupancy_fraction(), 0.0)

    def test_validation(self):
        with pytest.raises(SimulationError):
            ServerBuffers(0, 100.0, np.array([0]))
        with pytest.raises(SimulationError):
            ServerBuffers(2, 0.0, np.array([0]))
        with pytest.raises(SimulationError):
            ServerBuffers(2, 100.0, np.array([5]))


class TestAdmission:
    def test_all_admitted_when_room(self):
        buffers = make_buffers()
        offered = np.full(6, 100.0)
        admitted, oversub = buffers.admit(offered, np.ones(6))
        assert np.allclose(admitted, offered)
        assert not oversub.any()
        assert np.allclose(buffers.fill, 300.0)

    def test_admission_limited_by_capacity(self):
        buffers = make_buffers(capacity=300.0)
        offered = np.full(6, 200.0)
        admitted, oversub = buffers.admit(offered, np.ones(6))
        assert admitted[:3].sum() == pytest.approx(300.0)
        assert oversub.all()
        assert np.all(buffers.fill <= 300.0 + 1e-9)

    def test_max_admission_cap(self):
        buffers = make_buffers(capacity=1e9)
        offered = np.full(6, 500.0)
        admitted, _ = buffers.admit(offered, np.ones(6), max_admission=np.array([600.0, 600.0]))
        assert admitted[:3].sum() == pytest.approx(600.0)
        assert admitted[3:].sum() == pytest.approx(600.0)

    def test_extra_capacity_allows_pipelining(self):
        buffers = make_buffers(capacity=100.0)
        offered = np.full(6, 100.0)
        admitted, _ = buffers.admit(
            offered, np.ones(6), extra_capacity=np.array([200.0, 200.0])
        )
        assert admitted[:3].sum() == pytest.approx(300.0)

    def test_greedy_mode_with_rng(self, rng):
        buffers = make_buffers(capacity=250.0)
        offered = np.full(6, 200.0)
        admitted, oversub = buffers.admit(offered, np.ones(6), rng=rng)
        # Per server: capacity 250 < offered 600, so someone gets starved.
        per_server = np.array([admitted[:3].sum(), admitted[3:].sum()])
        assert np.allclose(per_server, 250.0)
        assert (admitted == 0).sum() >= 2

    def test_wrong_length_rejected(self):
        buffers = make_buffers()
        with pytest.raises(SimulationError):
            buffers.admit(np.ones(3), np.ones(3))


class TestDrain:
    def test_drain_attribution_proportional(self):
        buffers = make_buffers()
        offered = np.array([300.0, 100.0, 0.0, 0.0, 0.0, 0.0])
        buffers.admit(offered, np.ones(6))
        drained_server, drained_conn = buffers.drain(np.array([200.0, 200.0]))
        assert drained_server[0] == pytest.approx(200.0)
        assert drained_conn[0] == pytest.approx(150.0)
        assert drained_conn[1] == pytest.approx(50.0)
        assert buffers.fill[0] == pytest.approx(200.0)

    def test_drain_cannot_exceed_fill(self):
        buffers = make_buffers()
        buffers.admit(np.full(6, 10.0), np.ones(6))
        drained_server, _ = buffers.drain(np.array([1e9, 1e9]))
        assert np.allclose(drained_server, 30.0)
        assert np.allclose(buffers.fill, 0.0)

    def test_small_residues_are_snapped(self):
        buffers = make_buffers()
        buffers.admit(np.full(6, 10.0), np.ones(6))
        buffers.drain(np.array([30.0 - 1e-8, 30.0 - 1e-8]))
        assert np.allclose(buffers.conn_bytes, 0.0)

    def test_wrong_length_rejected(self):
        buffers = make_buffers()
        with pytest.raises(SimulationError):
            buffers.drain(np.array([1.0]))

    def test_queueing_delay(self):
        buffers = make_buffers()
        buffers.admit(np.full(6, 100.0), np.ones(6))
        delay = buffers.queueing_delay(np.array([100.0, 200.0]))
        assert delay[0] == pytest.approx(3.0)
        assert delay[1] == pytest.approx(1.5)


class TestStatistics:
    def test_pressure_fraction(self):
        buffers = make_buffers(capacity=100.0)
        buffers.note_step()
        buffers.admit(np.full(6, 100.0), np.ones(6))
        buffers.note_step()
        pressure = buffers.pressure_fraction()
        assert pressure[0] == pytest.approx(0.5)

    def test_reset(self):
        buffers = make_buffers()
        buffers.admit(np.full(6, 10.0), np.ones(6))
        buffers.note_step()
        buffers.reset()
        assert np.allclose(buffers.fill, 0.0)
        assert buffers.observed_steps == 0
        assert np.allclose(buffers.total_admitted, 0.0)


class TestProportionalAdmissionPaths:
    """The width-classed stacked admission (uniform and ragged groups alike)
    must agree bit-for-bit with the reference proportional_share per server."""

    def reference_admit(self, conn_server, n_servers, offered, weights, capacity):
        from repro.network.allocation import proportional_share

        admitted = np.zeros_like(offered)
        offered_per_server = np.bincount(conn_server, weights=offered, minlength=n_servers)
        for s in np.flatnonzero(offered_per_server > 0):
            mask = conn_server == s
            admitted[mask] = proportional_share(
                offered[mask], float(capacity[s]), weights=weights[mask]
            )
        return admitted

    def check(self, conn_server, n_servers, capacity_bytes, offered, weights):
        conn_server = np.asarray(conn_server, dtype=np.int64)
        buffers = ServerBuffers(
            n_servers=n_servers, capacity_bytes=capacity_bytes, conn_server=conn_server
        )
        admitted, _ = buffers.admit(offered, weights)
        capacity = np.full(n_servers, capacity_bytes)
        expected = self.reference_admit(conn_server, n_servers, offered, weights, capacity)
        assert np.array_equal(admitted, expected)
        return buffers

    def test_ragged_groups_pad_into_width_classes(self):
        conn_server = [0, 0, 0, 1, 1, 2]
        offered = np.array([50.0, 30.0, 40.0, 10.0, 200.0, 5.0])
        weights = np.array([1.0, 2.0, 1.0, 1.0, 1.0, 3.0])
        buffers = self.check(conn_server, 3, 100.0, offered, weights)
        assert not buffers._uniform_groups
        assert [w for w, _, _ in buffers._width_classes] == [1, 2, 3]
        # Widths 3/2/1 padded to K=3: 0 + 1 + 2 wasted slots.
        assert buffers.padded_slots == 3
        assert buffers.group_slots == 9

    def test_equal_groups_use_the_stacked_path(self):
        conn_server = [0, 1, 2, 0, 1, 2]
        offered = np.array([80.0, 30.0, 40.0, 90.0, 200.0, 5.0])
        weights = np.ones(6)
        buffers = self.check(conn_server, 3, 100.0, offered, weights)
        assert buffers._group_matrix is not None
        assert buffers._uniform_groups
        assert buffers.padded_slots == 0

    def test_server_without_connections_pads_harmlessly(self):
        conn_server = [0, 0, 2, 2]
        offered = np.array([90.0, 60.0, 10.0, 20.0])
        weights = np.ones(4)
        buffers = self.check(conn_server, 3, 100.0, offered, weights)
        # Server 1 hosts no connections: its padded row never reaches a
        # width class and costs K slots of padding waste.
        assert [w for w, _, _ in buffers._width_classes] == [2]
        assert buffers.padded_slots == 2

    def test_stacked_path_with_nonuniform_weights(self):
        conn_server = [0, 1, 0, 1]
        offered = np.array([90.0, 120.0, 70.0, 60.0])
        weights = np.array([1.0, 4.0, 2.0, 1.0])
        self.check(conn_server, 2, 100.0, offered, weights)

    def test_stacked_partial_oversubscription(self):
        """Some servers fit, some water-fill, one has no offer at all."""
        conn_server = [0, 1, 2, 0, 1, 2]
        offered = np.array([10.0, 300.0, 0.0, 20.0, 150.0, 0.0])
        weights = np.ones(6)
        self.check(conn_server, 3, 100.0, offered, weights)

    def test_rejects_nonpositive_weights(self):
        buffers = make_buffers()
        with pytest.raises(ValueError):
            buffers.admit(np.full(6, 10.0), np.zeros(6))

    def test_mutating_a_writeable_weights_array_is_picked_up(self):
        """Identity-caching of weights validation only applies to frozen
        arrays; mutating a reused writeable array must change the result."""
        conn_server = np.array([0, 0, 0, 0], dtype=np.int64)
        offered = np.array([100.0, 100.0, 100.0, 100.0])
        weights = np.ones(4)
        buffers = ServerBuffers(1, 100.0, conn_server)
        uniform, _ = buffers.admit(offered, weights)
        buffers.drain(np.array([1e9]))
        weights[0] = 3.0
        biased, _ = buffers.admit(offered, weights)
        assert biased[0] > uniform[0]
        weights[0] = -1.0
        with pytest.raises(ValueError):
            buffers.admit(offered, weights)

    def test_frozen_unit_weights_hit_the_identity_cache(self):
        conn_server = np.array([0, 1, 0, 1], dtype=np.int64)
        offered = np.array([90.0, 120.0, 70.0, 60.0])
        weights = np.ones(4)
        weights.flags.writeable = False
        buffers = ServerBuffers(2, 100.0, conn_server)
        buffers.admit(offered, weights)
        assert buffers._validated_weights is weights
        assert buffers._weights_all_ones
