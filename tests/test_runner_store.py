"""Tests for the persistent run store and manifest verification."""

import json

import pytest

from repro.errors import AnalysisError
from repro.runner.store import (
    MANIFEST_NAME,
    REQUIRED_MANIFEST_FIELDS,
    RunStore,
    load_manifest,
    verify_manifest,
    write_run,
)


@pytest.fixture()
def run_dir(tmp_path):
    """A small, valid persisted run."""
    path = tmp_path / "hdd_sync-on"
    write_run(
        path,
        run_id="hdd_sync-on",
        seed=1234,
        config={"scale": "tiny", "params": {"device": "hdd"}},
        artifacts={"sweep.json": '{"points": []}', "summary.json": "{}"},
    )
    return path


class TestWriteRun:
    def test_manifest_has_required_fields(self, run_dir):
        manifest = load_manifest(run_dir)
        for field in REQUIRED_MANIFEST_FIELDS:
            assert field in manifest
        assert manifest["run_id"] == "hdd_sync-on"
        assert manifest["seed"] == 1234
        assert manifest["config"]["scale"] == "tiny"

    def test_artifacts_written_and_checksummed(self, run_dir):
        manifest = load_manifest(run_dir)
        assert set(manifest["artifacts"]) == {"sweep.json", "summary.json"}
        for name, entry in manifest["artifacts"].items():
            assert (run_dir / name).is_file()
            assert len(entry["sha256"]) == 64

    def test_rejects_escaping_artifact_names(self, tmp_path):
        with pytest.raises(AnalysisError):
            write_run(tmp_path / "r", run_id="r", seed=0, config={},
                      artifacts={"../escape.txt": "x"})

    def test_load_manifest_missing_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            load_manifest(tmp_path)


class TestVerifyManifest:
    def test_valid_run_verifies(self, run_dir):
        ok, issues = verify_manifest(run_dir)
        assert ok and issues == []

    def test_tampered_artifact_detected(self, run_dir):
        (run_dir / "sweep.json").write_text('{"points": [1]}', encoding="utf-8")
        ok, issues = verify_manifest(run_dir)
        assert not ok
        assert any("checksum mismatch" in issue for issue in issues)

    def test_deleted_artifact_detected(self, run_dir):
        (run_dir / "summary.json").unlink()
        ok, issues = verify_manifest(run_dir)
        assert not ok
        assert any("missing artifact" in issue for issue in issues)

    def test_missing_manifest_detected(self, tmp_path):
        ok, issues = verify_manifest(tmp_path)
        assert not ok
        assert "missing manifest" in issues[0]

    def test_unparseable_manifest_detected(self, run_dir):
        (run_dir / MANIFEST_NAME).write_text("not json", encoding="utf-8")
        ok, issues = verify_manifest(run_dir)
        assert not ok
        assert "unreadable manifest" in issues[0]

    def test_non_dict_artifact_entry_detected(self, run_dir):
        manifest = load_manifest(run_dir)
        manifest["artifacts"]["sweep.json"] = "not-a-mapping"
        (run_dir / MANIFEST_NAME).write_text(json.dumps(manifest), encoding="utf-8")
        ok, issues = verify_manifest(run_dir)
        assert not ok
        assert any("must be a mapping" in issue for issue in issues)

    def test_missing_required_field_detected(self, run_dir):
        manifest = load_manifest(run_dir)
        del manifest["seed"]
        (run_dir / MANIFEST_NAME).write_text(json.dumps(manifest), encoding="utf-8")
        ok, issues = verify_manifest(run_dir)
        assert not ok
        assert any("seed" in issue for issue in issues)


class TestRunStore:
    def test_write_and_list_runs(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        store.write_run("a", seed=1, config={}, artifacts={"x.txt": "x"})
        store.write_run("b", seed=2, config={}, artifacts={"y.txt": "y"})
        assert [p.name for p in store.runs()] == ["a", "b"]

    def test_verify_all(self, tmp_path):
        store = RunStore(tmp_path)
        store.write_run("good", seed=1, config={}, artifacts={"x.txt": "x"})
        store.write_run("bad", seed=2, config={}, artifacts={"y.txt": "y"})
        (store.run_dir("bad") / "y.txt").write_text("tampered", encoding="utf-8")
        verdicts = store.verify_all()
        assert verdicts["good"][0] is True
        assert verdicts["bad"][0] is False

    def test_empty_store(self, tmp_path):
        assert RunStore(tmp_path / "nothing").runs() == []

    def test_run_id_sanitized(self, tmp_path):
        store = RunStore(tmp_path)
        path = store.write_run("a/b", seed=0, config={}, artifacts={"f": "x"})
        assert path.parent == store.root


class TestAtomicWrites:
    def test_write_run_leaves_no_tmp_debris(self, tmp_path):
        write_run(
            tmp_path / "run", run_id="r", seed=1, config={},
            artifacts={"a.json": "{}", "nested/b.txt": "hello"},
        )
        assert list((tmp_path / "run").glob("**/*.tmp")) == []
        ok, issues = verify_manifest(tmp_path / "run")
        assert ok, issues

    def test_atomic_write_failure_leaves_target_untouched(self, tmp_path):
        from repro.runner.store import atomic_write_text

        target = tmp_path / "artifact.json"
        target.write_text("original", encoding="utf-8")

        class Boom(Exception):
            pass

        class ExplodingStr(str):
            def __str__(self):
                raise Boom()

        # A write that fails mid-flight (simulated by a content object that
        # explodes on use) must not replace or truncate the target.
        with pytest.raises(TypeError):
            atomic_write_text(target, object())  # not a string at all
        assert target.read_text(encoding="utf-8") == "original"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_atomic_write_respects_umask(self, tmp_path):
        import os

        from repro.runner.store import atomic_write_text

        target = tmp_path / "artifact.json"
        previous = os.umask(0o022)
        try:
            atomic_write_text(target, "{}")
        finally:
            os.umask(previous)
        # mkstemp creates 0600 temps; the write must widen to the
        # umask-default mode so shared run stores stay group-readable.
        assert (target.stat().st_mode & 0o777) == 0o644

    def test_store_open_sweeps_stale_tmp_from_run_dirs(self, tmp_path):
        import os
        import time as time_mod

        store = RunStore(tmp_path)
        store.write_run("r1", seed=1, config={}, artifacts={"a.json": "{}"})
        stale = tmp_path / "r1" / "tmpabc123.tmp"
        stale.write_text("abandoned", encoding="utf-8")
        old = time_mod.time() - 7200
        os.utime(stale, (old, old))
        fresh = tmp_path / "r1" / "tmpdef456.tmp"
        fresh.write_text("live writer", encoding="utf-8")

        reopened = RunStore(tmp_path)
        assert reopened.swept_tmp == 1
        assert not stale.exists()
        assert fresh.exists()  # young temp: a concurrent writer may own it

    def test_sweep_missing_root_is_zero(self, tmp_path):
        from repro.runner.store import sweep_stale_tmp

        assert sweep_stale_tmp(tmp_path / "nowhere") == 0
