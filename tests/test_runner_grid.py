"""Tests for declarative parameter grids and their execution."""

import pytest

from repro.errors import ExperimentError
from repro.runner.grid import GRID_AXES, ParameterGrid, run_grid
from repro.runner.store import RunStore, load_manifest, verify_manifest


class TestParameterGrid:
    def test_cartesian_size_and_order(self):
        grid = ParameterGrid({"device": ["hdd", "ssd"], "sync": ["sync-on", "sync-off"]})
        assert len(grid) == 4
        points = grid.points()
        assert points[0] == {"device": "hdd", "sync": "sync-on"}
        assert points[-1] == {"device": "ssd", "sync": "sync-off"}

    def test_rejects_unknown_axis(self):
        with pytest.raises(ExperimentError):
            ParameterGrid({"flux_capacitor": ["on"]})

    def test_rejects_empty(self):
        with pytest.raises(ExperimentError):
            ParameterGrid({})
        with pytest.raises(ExperimentError):
            ParameterGrid({"device": []})

    def test_from_specs(self):
        grid = ParameterGrid.from_specs(["device=hdd,ssd", "stripe_kib=64,256"])
        assert len(grid) == 4
        assert grid.axes["stripe_kib"] == ["64", "256"]

    def test_from_specs_rejects_malformed(self):
        with pytest.raises(ExperimentError):
            ParameterGrid.from_specs(["devicehdd"])
        with pytest.raises(ExperimentError):
            ParameterGrid.from_specs(["device="])

    def test_point_id_stable_and_safe(self):
        pid = ParameterGrid.point_id({"device": "hdd", "sync": "sync-on"})
        assert pid == "hdd_sync-on"
        assert "/" not in ParameterGrid.point_id({"device": "a/b"})

    def test_every_axis_maps_to_scenario_kwarg(self):
        assert set(GRID_AXES) == {
            "device", "sync", "pattern", "network", "stripe_kib", "request_kib"
        }


class TestRunGrid:
    @pytest.fixture(scope="class")
    def executed(self, tmp_path_factory):
        """A 2x2 grid executed with 2 workers and a persistent store."""
        store_dir = tmp_path_factory.mktemp("runs")
        grid = ParameterGrid({"device": ["hdd", "ram"], "sync": ["sync-on", "sync-off"]})
        result = run_grid(
            grid, scale="tiny", n_points=3, jobs=2, store_dir=str(store_dir)
        )
        return result, store_dir

    def test_one_result_per_point_in_grid_order(self, executed):
        result, _ = executed
        assert [pt.point_id for pt in result.points] == [
            "hdd_sync-on", "hdd_sync-off", "ram_sync-on", "ram_sync-off"
        ]

    def test_summaries_are_sane(self, executed):
        result, _ = executed
        for pt in result.points:
            assert pt.summary["peak_interference_factor"] >= 1.0
            assert len(pt.sweep.points) == 3

    def test_manifests_written_and_verify(self, executed):
        result, store_dir = executed
        store = RunStore(store_dir)
        assert len(store.runs()) == 4
        for pt in result.points:
            ok, issues = verify_manifest(pt.run_dir)
            assert ok, issues
            manifest = load_manifest(pt.run_dir)
            assert manifest["config"]["params"] == pt.params
            assert manifest["seed"] == pt.seed
            assert set(manifest["artifacts"]) == {"sweep.json", "summary.json", "sweep.csv"}

    def test_per_point_seeds_differ_but_are_deterministic(self, executed):
        result, _ = executed
        seeds = [pt.point_id and pt.seed for pt in result.points]
        assert len(set(seeds)) == len(seeds)
        rerun = run_grid(
            ParameterGrid({"device": ["hdd", "ram"], "sync": ["sync-on", "sync-off"]}),
            scale="tiny", n_points=3, jobs=1,
        )
        assert [pt.seed for pt in rerun.points] == [pt.seed for pt in result.points]

    def test_rows_cover_every_point(self, executed):
        result, _ = executed
        rows = result.to_rows()
        assert len(rows) == 4
        assert {"peak_IF", "asymmetry", "flatness", "collapses"} <= set(rows[0])

    def test_point_lookup(self, executed):
        result, _ = executed
        assert result.point("hdd_sync-on").params["device"] == "hdd"
        with pytest.raises(ExperimentError):
            result.point("nope")

    def test_no_store_means_no_run_dirs(self):
        result = run_grid(
            ParameterGrid({"device": ["ram"]}), scale="tiny", n_points=3
        )
        assert result.points[0].run_dir is None
        assert result.store_root is None
