"""Property-based tests (hypothesis) on the core data structures and laws."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core import metrics
from repro.network.allocation import allocate_greedy_in_order, cap_by_group, proportional_share
from repro.pfs.striping import extent_to_server_bytes, servers_touched
from repro.sim.timeseries import TimeSeries
from repro.storage.hdd import hdd_7200rpm

# --------------------------------------------------------------------------- #
# Allocation invariants
# --------------------------------------------------------------------------- #

demands_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


@given(demands=demands_strategy, capacity=st.floats(min_value=0.0, max_value=1e9))
@settings(max_examples=60, deadline=None)
def test_proportional_share_conserves_and_caps(demands, capacity):
    demands = np.asarray(demands)
    alloc = proportional_share(demands, capacity)
    assert np.all(alloc >= -1e-9)
    assert np.all(alloc <= demands + 1e-6)
    assert alloc.sum() <= min(capacity, demands.sum()) * (1 + 1e-6) + 1e-6
    if demands.sum() <= capacity:
        assert np.allclose(alloc, demands)


@given(
    demands=demands_strategy,
    capacity=st.floats(min_value=0.0, max_value=1e8),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=60, deadline=None)
def test_greedy_allocation_conserves_and_caps(demands, capacity, seed):
    demands = np.asarray(demands)
    rng = np.random.default_rng(seed)
    keys = rng.random(demands.shape[0])
    groups = np.zeros(demands.shape[0], dtype=int)
    admitted = allocate_greedy_in_order(demands, keys, groups, np.array([capacity]))
    assert np.all(admitted >= -1e-9)
    assert np.all(admitted <= demands + 1e-6)
    assert admitted.sum() <= min(capacity, demands.sum()) * (1 + 1e-6) + 1e-6


@given(
    demands=demands_strategy,
    n_groups=st.integers(min_value=1, max_value=5),
    capacity=st.floats(min_value=1.0, max_value=1e8),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=60, deadline=None)
def test_cap_by_group_respects_group_capacities(demands, n_groups, capacity, seed):
    demands = np.asarray(demands)
    rng = np.random.default_rng(seed)
    groups = rng.integers(0, n_groups, size=demands.shape[0])
    capacities = np.full(n_groups, capacity)
    capped = cap_by_group(demands, groups, capacities)
    assert np.all(capped <= demands + 1e-9)
    for g in range(n_groups):
        assert capped[groups == g].sum() <= capacity * (1 + 1e-9) + 1e-9


# --------------------------------------------------------------------------- #
# Striping invariants
# --------------------------------------------------------------------------- #


@given(
    offset=st.floats(min_value=0, max_value=1e12),
    length=st.floats(min_value=0, max_value=1e9),
    stripe_kib=st.sampled_from([16, 64, 128, 256, 1024]),
    n_servers=st.integers(min_value=1, max_value=24),
)
@settings(max_examples=100, deadline=None)
def test_striping_conserves_bytes(offset, length, stripe_kib, n_servers):
    servers = tuple(range(n_servers))
    out = extent_to_server_bytes(offset, length, stripe_kib * units.KiB, servers, n_servers)
    assert out.sum() == np.float64(length) or abs(out.sum() - length) < 1e-3
    assert np.all(out >= 0)


@given(
    length=st.floats(min_value=1.0, max_value=64 * units.MiB),
    stripe_kib=st.sampled_from([64, 128, 256]),
    n_servers=st.integers(min_value=1, max_value=24),
)
@settings(max_examples=60, deadline=None)
def test_servers_touched_bounded(length, stripe_kib, n_servers):
    servers = tuple(range(n_servers))
    stripe = stripe_kib * units.KiB
    touched = servers_touched(0.0, length, stripe, servers)
    assert 1 <= len(touched) <= n_servers
    assert len(touched) <= int(np.ceil(length / stripe))
    assert len(set(touched)) == len(touched)


# --------------------------------------------------------------------------- #
# Device-law invariants
# --------------------------------------------------------------------------- #


@given(
    n_streams=st.integers(min_value=1, max_value=512),
    granule_kib=st.floats(min_value=4, max_value=16384),
)
@settings(max_examples=80, deadline=None)
def test_device_bandwidth_bounded_and_monotone(n_streams, granule_kib):
    hdd = hdd_7200rpm()
    granule = granule_kib * units.KiB
    bw = hdd.effective_write_bw(n_streams, granule)
    assert 0 < bw <= hdd.write_bw
    # More streams never increase bandwidth.
    assert bw <= hdd.effective_write_bw(max(n_streams - 1, 1), granule) + 1e-6
    # Larger granularity never decreases bandwidth.
    assert hdd.effective_write_bw(n_streams, granule * 2) >= bw - 1e-6


# --------------------------------------------------------------------------- #
# Time-series invariants
# --------------------------------------------------------------------------- #


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
    )
)
@settings(max_examples=60, deadline=None)
def test_timeseries_statistics_within_bounds(values):
    ts = TimeSeries()
    for i, v in enumerate(values):
        ts.append(float(i), float(v))
    assert ts.min() <= ts.mean() <= ts.max()
    assert len(ts) == len(values)
    resampled = ts.resample(np.array([0.5, len(values) + 5.0]))
    assert resampled[0] == values[0]
    assert resampled[-1] == values[-1]


# --------------------------------------------------------------------------- #
# Metric invariants
# --------------------------------------------------------------------------- #


@given(
    alone=st.floats(min_value=0.1, max_value=1e4),
    factor=st.floats(min_value=1.0, max_value=10.0),
)
@settings(max_examples=60, deadline=None)
def test_interference_factor_roundtrip(alone, factor):
    contended = alone * factor
    assert metrics.interference_factor(contended, alone) == np.float64(factor) or abs(
        metrics.interference_factor(contended, alone) - factor
    ) < 1e-9


@given(
    times=st.lists(st.floats(min_value=0.1, max_value=1e3), min_size=1, max_size=20),
    alone=st.floats(min_value=0.1, max_value=1e3),
)
@settings(max_examples=60, deadline=None)
def test_flatness_consistent_with_is_flat(times, alone):
    flatness = metrics.flatness_index(times, alone)
    assert metrics.is_flat(times, alone, tolerance=flatness + 1e-9)
    if flatness > 0.15:
        assert not metrics.is_flat(times, alone)
