"""Tests for the campaign-throughput benchmark (BENCH_campaign.json)."""

import json
from pathlib import Path

import pytest

from repro.errors import PerfError
from repro.perf.campaign import (
    CAMPAIGN_SCHEMA_ID,
    check_campaign_regression,
    format_campaign_summary,
    run_campaign_bench,
    validate_campaign_document,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _document():
    """A minimal valid campaign document (hand-built, no measurement)."""
    cell = {
        "jobs": 1,
        "batch": True,
        "cold_wall_s": 4.0,
        "warm_wall_s": 0.1,
        "warm_hit_rate": 1.0,
        "utilization": 0.9,
        "batched_share": 1.0,
        "buckets": 5.0,
        "member_runs": 5.0,
        "ragged_fallbacks": 0.0,
        "padded_slots": 10.0,
        "padded_waste": 0.1,
        "matrix_sha256": "a" * 64,
    }
    scalar = dict(cell, batch=False, batched_share=0.0, buckets=0.0,
                  member_runs=0.0, padded_slots=0.0, padded_waste=0.0)
    return {
        "schema": CAMPAIGN_SCHEMA_ID,
        "python": "3.11.7",
        "scale": "tiny",
        "archetypes": ["checkpoint", "analytics"],
        "n_tasks": 5,
        "repeats": 1,
        "jobs_grid": [1],
        "cells": {"jobs1-batched": cell, "jobs1-scalar": scalar},
        "identical": True,
        "batched_kernel": {
            "batched/tiny-hdd-sync-on@b8": {
                "scale": "tiny", "kind": "batched", "batch": 8,
                "n_steps": 150, "best_ns": 1000, "steps_per_sec": 15000.0,
            },
        },
        "reference": {"label": "x", "scenarios": {}},
        "speedup": {},
        "caveat": "wall times are machine-local",
    }


class TestValidate:
    def test_valid_document_passes(self):
        validate_campaign_document(_document())

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("schema"),
        lambda d: d.update(schema="repro-io/bench-campaign/v0"),
        lambda d: d.update(identical="yes"),
        lambda d: d.update(cells={}),
        lambda d: d["cells"]["jobs1-batched"].pop("cold_wall_s"),
        lambda d: d["cells"]["jobs1-batched"].update(jobs=0),
        lambda d: d["cells"]["jobs1-batched"].update(matrix_sha256="short"),
        lambda d: d.update(batched_kernel={}),
        lambda d: d["batched_kernel"]["batched/tiny-hdd-sync-on@b8"].update(
            steps_per_sec=0.0
        ),
        lambda d: d.update(archetypes=["solo"]),
    ])
    def test_broken_documents_fail(self, mutate):
        document = _document()
        mutate(document)
        with pytest.raises(PerfError):
            validate_campaign_document(document)


class TestRegressionGate:
    def test_identical_document_passes(self):
        doc = _document()
        assert check_campaign_regression(doc, doc) == []

    def test_nonidentical_grid_fails(self):
        current = _document()
        current["identical"] = False
        failures = check_campaign_regression(current, _document())
        assert any("byte-identical" in f for f in failures)

    def test_batched_fallbacks_fail(self):
        current = _document()
        current["cells"]["jobs1-batched"]["ragged_fallbacks"] = 2.0
        failures = check_campaign_regression(current, _document())
        assert any("ragged fallbacks" in f for f in failures)

    def test_scalar_cell_fallbacks_are_not_gated(self):
        current = _document()
        current["cells"]["jobs1-scalar"]["ragged_fallbacks"] = 5.0
        assert check_campaign_regression(current, _document()) == []

    def test_kernel_regression_fails(self):
        current = _document()
        key = "batched/tiny-hdd-sync-on@b8"
        current["batched_kernel"][key]["steps_per_sec"] = 1000.0
        failures = check_campaign_regression(current, _document())
        assert any("below 70%" in f for f in failures)

    def test_wall_times_are_not_gated(self):
        current = _document()
        current["cells"]["jobs1-batched"]["cold_wall_s"] = 9999.0
        assert check_campaign_regression(current, _document()) == []

    def test_keys_missing_from_baseline_are_skipped(self):
        baseline = _document()
        baseline["batched_kernel"] = {
            "batched/other@b4": {
                "scale": "tiny", "kind": "batched", "batch": 4,
                "n_steps": 150, "best_ns": 1000, "steps_per_sec": 1e9,
            },
        }
        assert check_campaign_regression(_document(), baseline) == []

    def test_bad_min_ratio_rejected(self):
        with pytest.raises(PerfError):
            check_campaign_regression(_document(), _document(), min_ratio=0.0)


class TestCommittedBaseline:
    def test_committed_campaign_baseline_is_valid(self):
        path = REPO_ROOT / "BENCH_campaign.json"
        document = json.loads(path.read_text(encoding="utf-8"))
        validate_campaign_document(document)
        assert document["identical"] is True
        for key, cell in document["cells"].items():
            if cell["batch"]:
                assert cell["ragged_fallbacks"] == 0, key


class TestSummary:
    def test_format_mentions_cells_and_kernel(self):
        text = format_campaign_summary(_document())
        assert "jobs1-batched" in text
        assert "identical across grid: True" in text
        assert "batched/tiny-hdd-sync-on@b8" in text


class TestCampaignBenchSmoke:
    def test_tiny_grid_round_trips(self):
        document = run_campaign_bench(
            archetypes=("checkpoint", "analytics"),
            repeats=1,
            jobs_grid=(1,),
            kernel_batches=(2,),
        )
        validate_campaign_document(document)
        assert document["identical"] is True
        batched = document["cells"]["jobs1-batched"]
        assert batched["ragged_fallbacks"] == 0
        assert batched["warm_hit_rate"] == 1.0
        # A fresh measurement must pass the gate against itself.
        assert check_campaign_regression(document, document) == []
