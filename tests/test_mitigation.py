"""Tests for the mitigation baselines."""

import pytest

from repro import units
from repro.config.presets import make_scenario
from repro.errors import ConfigurationError, ExperimentError
from repro.mitigation import (
    DedicatedWriters,
    ServerPartitioning,
    ServerSideCoordination,
    SourceRateLimit,
    evaluate_mitigation,
)


class TestTransformations:
    def test_dedicated_writers(self):
        scenario = make_scenario("tiny")
        out = DedicatedWriters(writers_per_node=1).apply(scenario)
        assert all(app.procs_per_node == 1 for app in out.applications)
        assert out.total_bytes() == pytest.approx(scenario.total_bytes())

    def test_dedicated_writers_validation(self):
        with pytest.raises(ConfigurationError):
            DedicatedWriters(writers_per_node=0)
        scenario = make_scenario("tiny", procs_per_node=2)
        with pytest.raises(ConfigurationError):
            DedicatedWriters(writers_per_node=4).apply(scenario)

    def test_source_rate_limit(self):
        scenario = make_scenario("tiny")
        out = SourceRateLimit(node_bw=50 * units.MiB).apply(scenario)
        assert out.platform.network.effective_node_bw <= 50 * units.MiB
        with pytest.raises(ConfigurationError):
            SourceRateLimit(node_bw=0)

    def test_server_partitioning(self):
        scenario = make_scenario("tiny")
        out = ServerPartitioning().apply(scenario)
        a, b = (set(out.app_servers(app)) for app in out.applications)
        assert a.isdisjoint(b)

    def test_server_side_coordination(self):
        scenario = make_scenario("tiny", pattern="strided", request_size=256 * units.KiB)
        out = ServerSideCoordination().apply(scenario)
        assert out.filesystem.stripe_size == 256 * units.KiB
        explicit = ServerSideCoordination(stripe_size=128 * units.KiB).apply(scenario)
        assert explicit.filesystem.stripe_size == 128 * units.KiB
        with pytest.raises(ConfigurationError):
            ServerSideCoordination(stripe_size=0)

    def test_describe(self):
        assert "Dedicated" in DedicatedWriters().describe()


class TestEvaluation:
    def test_partitioning_reduces_interference(self):
        scenario = make_scenario("tiny", device="hdd", sync_mode="sync-on")
        outcome = evaluate_mitigation(ServerPartitioning(), scenario, deltas=[0.0])
        assert outcome.mitigated_peak_if < outcome.baseline_peak_if
        assert outcome.interference_reduction > 0.2
        # Partitioning halves the servers available to each application.
        assert outcome.alone_cost > 0.0
        summary = outcome.summary()
        assert "peak_if_baseline" in summary

    def test_single_app_scenario_rejected(self):
        scenario = make_scenario("tiny")
        alone = scenario.with_applications(scenario.applications[:1])
        with pytest.raises(ExperimentError):
            evaluate_mitigation(ServerPartitioning(), alone)

    def test_worth_it_logic(self):
        from repro.mitigation.base import MitigationOutcome

        good = MitigationOutcome("m", 1.0, 1.05, 2.0, 1.1, 0.3, 0.0)
        bad = MitigationOutcome("m", 1.0, 2.0, 2.0, 1.1, 0.3, 0.0)
        neutral = MitigationOutcome("m", 1.0, 1.0, 2.0, 1.95, 0.3, 0.3)
        assert good.worth_it()
        assert not bad.worth_it()      # costs too much alone performance
        assert not neutral.worth_it()  # does not reduce interference
