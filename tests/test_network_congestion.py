"""Tests for the per-connection window model."""

import numpy as np
import pytest

from repro.config.network import TransportConfig
from repro.network.congestion import WindowState


def make_state(n=4, rng=None, **kwargs):
    transport = TransportConfig(rto=0.05, **kwargs)
    rng = rng or np.random.default_rng(0)
    return WindowState(n, transport, rng), transport


class TestInitialState:
    def test_initial_windows(self):
        state, transport = make_state(3)
        assert np.allclose(state.cwnd, transport.window_init)
        assert state.total_collapses() == 0
        assert not state.paced.any()

    def test_sending_allowed_at_negative_time(self):
        state, _ = make_state(2)
        assert state.sending_allowed(-100.0).all()

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            WindowState(-1, TransportConfig(), np.random.default_rng(0))


class TestDesiredBytes:
    def test_window_limited_rate(self):
        state, transport = make_state(2)
        desired = state.desired_bytes(now=0.0, dt=0.01, rtt_eff=np.array([0.01, 0.01]))
        assert np.allclose(desired, transport.window_init)

    def test_stalled_connections_desire_nothing(self):
        state, _ = make_state(2)
        state.stall_until[0] = 10.0
        desired = state.desired_bytes(now=0.0, dt=0.01, rtt_eff=np.array([0.01, 0.01]))
        assert desired[0] == 0.0
        assert desired[1] > 0.0


class TestUpdate:
    def test_additive_increase_on_success(self):
        state, transport = make_state(1)
        before = state.cwnd.copy()
        state.update(
            now=0.0,
            dt=0.01,
            requested=np.array([2000.0]),
            admitted=np.array([2000.0]),
            rtt_eff=np.array([0.01]),
            oversubscribed=np.array([False]),
        )
        assert state.cwnd[0] > before[0]
        assert state.paced[0]  # delivered more than one MSS

    def test_window_capped_at_max(self):
        state, transport = make_state(1)
        state.cwnd[:] = transport.window_max
        state.update(
            now=0.0,
            dt=1.0,
            requested=np.array([1.0e6]),
            admitted=np.array([1.0e6]),
            rtt_eff=np.array([0.001]),
            oversubscribed=np.array([False]),
        )
        assert state.cwnd[0] == transport.window_max

    def test_multiplicative_decrease_when_throttled(self):
        state, transport = make_state(1)
        before = float(state.cwnd[0])
        state.update(
            now=0.0,
            dt=0.01,
            requested=np.array([10000.0]),
            admitted=np.array([1000.0]),
            rtt_eff=np.array([0.01]),
            oversubscribed=np.array([True]),
        )
        assert state.cwnd[0] == pytest.approx(before * transport.multiplicative_decrease)

    def test_starvation_leads_to_timeout(self):
        state, transport = make_state(1)
        result = None
        for step in range(20):
            result = state.update(
                now=step * 0.01,
                dt=0.01,
                requested=np.array([10000.0]),
                admitted=np.array([0.0]),
                rtt_eff=np.array([0.01]),
                oversubscribed=np.array([True]),
                loss_prone=np.array([True]),
            )
            if result.n_collapsed:
                break
        assert result is not None and result.n_collapsed == 1
        assert state.cwnd[0] == transport.window_min
        assert state.total_collapses() == 1
        assert not state.sending_allowed(result_time := step * 0.01 + 1e-6)[0]
        assert not state.paced[0]

    def test_no_timeout_when_not_loss_prone(self):
        state, _ = make_state(1)
        for step in range(30):
            result = state.update(
                now=step * 0.01,
                dt=0.01,
                requested=np.array([10000.0]),
                admitted=np.array([0.0]),
                rtt_eff=np.array([0.01]),
                oversubscribed=np.array([True]),
                loss_prone=np.array([False]),
            )
        assert state.total_collapses() == 0

    def test_force_timeout(self):
        state, transport = make_state(3)
        state.paced[:] = True
        n = state.force_timeout(np.array([0, 2]), now=1.0)
        assert n == 2
        assert not state.sending_allowed(1.0 + transport.rto * 0.4)[0]
        assert state.sending_allowed(1.0)[1]
        assert state.collapse_count.tolist() == [1, 0, 1]
        assert not state.paced[0] and state.paced[1]
        assert state.force_timeout(np.array([], dtype=int), now=1.0) == 0

    def test_backoff_capped(self):
        state, transport = make_state(1)
        for _ in range(10):
            state.force_timeout(np.array([0]), now=0.0)
        max_stall = transport.rto * (2.0**transport.max_backoff_exponent) * 1.5
        assert state.stall_until[0] <= max_stall + 1e-9

    def test_established_mask_tracks_delivery(self):
        state, transport = make_state(2)
        state.update(
            now=0.0,
            dt=0.01,
            requested=np.array([1000.0, 0.0]),
            admitted=np.array([1000.0, 0.0]),
            rtt_eff=np.array([0.01, 0.01]),
            oversubscribed=np.array([False, False]),
        )
        mask = state.established_mask(0.0)
        assert mask[0] and not mask[1]
        assert not state.established_mask(transport.established_memory + 1.0)[0]

    def test_admission_weights(self):
        state, transport = make_state(2)
        state.last_delivery[0] = 0.0
        weights = state.admission_weights(0.0)
        assert weights[0] == transport.established_weight
        assert weights[1] == 1.0

    def test_stalled_fraction(self):
        state, _ = make_state(4)
        state.stall_until[:2] = 100.0
        frac = state.stalled_fraction(0.0, active_mask=np.array([True, True, True, True]))
        assert frac == pytest.approx(0.5)
        assert state.stalled_fraction(0.0, np.zeros(4, dtype=bool)) == 0.0
