"""Tests for the trace recorder."""

import pytest

from repro.errors import AnalysisError
from repro.sim.tracing import TraceConfig, TraceRecorder, iter_series


class TestTraceConfig:
    def test_defaults(self):
        cfg = TraceConfig()
        assert cfg.record_progress
        assert not cfg.record_windows

    def test_minimal_and_full(self):
        assert not TraceConfig.minimal().record_server_state
        assert TraceConfig.full().record_windows

    def test_validation(self):
        with pytest.raises(AnalysisError):
            TraceConfig(series_sample_period=0)
        with pytest.raises(AnalysisError):
            TraceConfig(window_connection_limit=-1)


class TestRecorder:
    def test_record_and_get_series(self):
        rec = TraceRecorder()
        rec.record("progress.A", 0.0, 0.0)
        rec.record("progress.A", 1.0, 0.5)
        series = rec.get_series("progress.A")
        assert len(series) == 2
        assert rec.has_series("progress.A")
        assert not rec.has_series("progress.B")

    def test_unknown_series_raises(self):
        rec = TraceRecorder()
        with pytest.raises(AnalysisError):
            rec.get_series("missing")

    def test_series_names_prefix(self):
        rec = TraceRecorder()
        rec.record("window.A", 0.0, 1.0)
        rec.record("window.B", 0.0, 1.0)
        rec.record("progress.A", 0.0, 1.0)
        assert rec.series_names("window.") == ["window.A", "window.B"]

    def test_marks(self):
        rec = TraceRecorder()
        rec.mark(1.0, "phase", "A.start")
        rec.mark(2.0, "incast", "collapse", data={"count": 3})
        assert rec.count_marks("phase") == 1
        assert rec.count_marks("incast", "collapse") == 1
        assert rec.marks_in_category("incast")[0].data == {"count": 3}

    def test_marks_disabled(self):
        rec = TraceRecorder(TraceConfig(record_marks=False))
        rec.mark(1.0, "phase", "A.start")
        assert rec.count_marks("phase") == 0

    def test_merge_with_prefix(self):
        a = TraceRecorder()
        a.record("x", 0.0, 1.0)
        a.mark(0.0, "phase", "start")
        b = TraceRecorder()
        b.merge(a, prefix="runA.")
        assert b.has_series("runA.x")
        assert b.marks[0].label == "runA.start"

    def test_iter_series(self):
        rec = TraceRecorder()
        rec.record("s.one", 0.0, 1.0)
        rec.record("s.two", 0.0, 2.0)
        names = [s.name for s in iter_series(rec, "s.")]
        assert names == ["s.one", "s.two"]

    def test_to_dict(self):
        rec = TraceRecorder()
        rec.record("x", 0.0, 1.0)
        rec.mark(0.5, "phase", "go")
        dump = rec.to_dict()
        assert "x" in dump["series"]
        assert dump["marks"][0]["label"] == "go"
