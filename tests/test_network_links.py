"""Tests for links, NICs and the star topology."""

import numpy as np
import pytest

from repro import units
from repro.config.network import NetworkConfig
from repro.errors import ConfigurationError, SimulationError
from repro.network.link import Link
from repro.network.nic import NIC
from repro.network.topology import StarTopology


class TestLink:
    def test_utilization_accounting(self):
        link = Link("test", capacity=100.0)
        link.record(50.0, dt=1.0)
        link.record(100.0, dt=1.0)
        assert link.utilization() == pytest.approx(0.75)
        assert link.mean_throughput() == pytest.approx(75.0)
        assert link.transferred_bytes == 150.0

    def test_capacity_enforced(self):
        link = Link("test", capacity=100.0)
        with pytest.raises(SimulationError):
            link.record(150.0, dt=1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Link("bad", capacity=0.0)
        link = Link("test", capacity=10.0)
        with pytest.raises(SimulationError):
            link.record(-1.0, dt=1.0)
        with pytest.raises(SimulationError):
            link.max_bytes(0.0)

    def test_reset(self):
        link = Link("test", capacity=10.0)
        link.record(5.0, 1.0)
        link.reset()
        assert link.utilization() == 0.0
        assert link.transferred_bytes == 0.0


class TestNIC:
    def test_effective_bw_is_min(self):
        nic = NIC(node_id=0, line_rate=1.25e9, injection_bw=220 * units.MiB)
        assert nic.effective_bw == 220 * units.MiB
        nic_slow = NIC(node_id=1, line_rate=125e6, injection_bw=220 * units.MiB)
        assert nic_slow.effective_bw == 125e6

    def test_record_and_utilization(self):
        nic = NIC(node_id=0, line_rate=100.0, injection_bw=100.0)
        nic.record(50.0, dt=1.0)
        assert nic.utilization() == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NIC(node_id=0, line_rate=0.0, injection_bw=1.0)


class TestStarTopology:
    def make(self):
        return StarTopology(n_client_nodes=3, n_servers=2, network=NetworkConfig())

    def test_capacities(self):
        topo = self.make()
        assert topo.node_capacities().shape == (3,)
        assert topo.server_capacities().shape == (2,)
        assert np.all(topo.node_capacities() > 0)

    def test_record_step_and_report(self):
        topo = self.make()
        per_node = np.array([1e6, 2e6, 0.0])
        per_server = np.array([1.5e6, 1.5e6])
        topo.record_step(per_node, per_server, dt=0.1)
        report = topo.utilization_report()
        assert len(report) == 5
        assert topo.max_client_utilization() > 0
        assert topo.max_server_utilization() > 0

    def test_record_wrong_shape(self):
        topo = self.make()
        with pytest.raises(ConfigurationError):
            topo.record_step(np.zeros(2), np.zeros(2), dt=0.1)
        with pytest.raises(ConfigurationError):
            topo.record_step(np.zeros(3), np.zeros(3), dt=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StarTopology(0, 2, NetworkConfig())
