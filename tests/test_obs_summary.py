"""Summary and diff reports over telemetry documents."""

import json

import pytest

from repro.errors import TelemetryError
from repro.obs.summary import (
    TELEMETRY_DOCUMENT_NAME,
    cache_stats,
    diff_documents,
    executor_stats,
    load_run_telemetry,
    phase_timing,
    summarize_document,
)
from repro.obs.telemetry import Telemetry


def build_document(cache_hits=2, jobs=2.0):
    t = Telemetry(label="summary")
    campaign = t.add_span("campaign:tiny", "campaign", 0.0, 10e6)
    t.add_span("a", "task", 0.0, 6e6, parent=campaign, track="tasks",
               args={"kind": "matrix-alone", "queue_wait_s": 0.25})
    t.add_span("b", "task", 1e6, 8e6, parent=campaign, track="tasks",
               args={"kind": "matrix-pair", "queue_wait_s": 0.5})
    t.gauge("executor.jobs", jobs)
    t.count("executor.tasks.completed", 2)
    t.count("executor.tasks.cached", cache_hits)
    t.count("cache.probe", 4)
    t.count("cache.hit", cache_hits)
    t.count("cache.miss", 4 - cache_hits)
    t.count("cache.store", 4 - cache_hits)
    t.count("cache.bytes_written", 1234)
    t.count("step.phase.drain.ns", 4e9)
    t.count("step.phase.drain.calls", 100)
    t.count("step.phase.offer.ns", 1e9)
    t.count("step.phase.offer.calls", 50)
    t.count("engine.events.processed", 7)
    return t.to_document(run_id="run")


class TestDerivedStats:
    def test_executor_utilization(self):
        stats = executor_stats(build_document())
        assert stats["n_tasks"] == 2.0
        assert stats["busy_s"] == pytest.approx(14.0)
        assert stats["wall_s"] == pytest.approx(10.0)
        # 14s busy over 10s wall on 2 workers
        assert stats["utilization"] == pytest.approx(0.7)
        assert stats["max_queue_wait_s"] == pytest.approx(0.5)

    def test_executor_stats_without_spans(self):
        stats = executor_stats(Telemetry().to_document())
        assert stats["n_tasks"] == 0.0
        assert stats["utilization"] == 0.0

    def test_phase_timing_sorted_by_cost(self):
        rows = phase_timing(build_document())
        assert [r[0] for r in rows] == ["drain", "offer"]
        assert rows[0][1] == pytest.approx(4000.0)  # ms
        assert rows[0][2] == 100.0

    def test_cache_hit_rate(self):
        stats = cache_stats(build_document(cache_hits=3))
        assert stats["hit_rate"] == pytest.approx(0.75)
        assert stats["bytes_written"] == 1234.0

    def test_cache_hit_rate_without_probes(self):
        assert cache_stats(Telemetry().to_document())["hit_rate"] == 0.0

    def test_batch_stats(self):
        from repro.obs.summary import batch_stats

        t = Telemetry(label="batched")
        t.count("batch.buckets", 2)
        t.count("batch.member_runs", 12)
        t.count("batch.ragged_fallbacks", 2)
        t.count("executor.tasks.completed", 14)
        t.count("batch.padded_slots", 32)
        t.count("batch.group_slots", 128)
        t.observe("batch.occupancy", 8.0)
        t.observe("batch.occupancy", 4.0)
        stats = batch_stats(t.to_document())
        assert stats["buckets"] == 2.0
        assert stats["member_runs"] == 12.0
        assert stats["fallbacks"] == 2.0
        assert stats["batched_share"] == pytest.approx(12 / 14)
        assert stats["mean_occupancy"] == pytest.approx(6.0)
        assert stats["max_occupancy"] == 8.0
        assert stats["padded_slots"] == 32.0
        assert stats["group_slots"] == 128.0
        assert stats["padded_waste"] == pytest.approx(0.25)

    def test_batch_stats_without_batching(self):
        from repro.obs.summary import batch_stats

        stats = batch_stats(Telemetry().to_document())
        assert stats["buckets"] == 0.0
        assert stats["batched_share"] == 0.0
        assert stats["padded_waste"] == 0.0


class TestSummarizeDocument:
    def test_report_sections(self):
        report = summarize_document(build_document(), run_dir="runs/x")
        assert "telemetry summary: summary (runs/x)" in report
        assert "utilization 70.0%" in report
        assert "2/4 hits (50.0%)" in report
        assert "drain" in report and "offer" in report
        assert "engine.events.processed" in report

    def test_empty_document_reports_placeholders(self):
        report = summarize_document(Telemetry().to_document())
        assert "no cache activity recorded" in report
        assert "no step-phase timing recorded" in report
        assert "no batched simulation recorded" in report
        assert "lake" not in report  # section appears only when the lake ran

    def test_lake_section_reports_reconciliation(self):
        t = Telemetry(label="lake")
        t.count("lake.query", 2)
        t.count("lake.entries", 12)
        t.count("lake.reconcile.ghosts", 1)
        t.count("lake.reconcile.backfilled", 3)
        t.count("lake.reconcile.duplicates", 4)
        t.count("lake.compact.entries", 12)
        t.count("lake.compact.dropped", 5)
        report = summarize_document(t.to_document())
        assert "2 queries over 12 entries" in report
        assert "dropped 1 ghosts" in report
        assert "backfilled 3" in report
        assert "shadowed 4 duplicates" in report
        assert "compaction kept 12 lines, dropped 5" in report

    def test_resilience_section_reports_recovery_paths(self):
        t = Telemetry(label="chaos")
        t.count("executor.retries", 5)
        t.count("executor.timeouts", 1)
        t.count("executor.quarantined", 1)
        t.count("executor.pool_rebuilds", 2)
        t.count("batch.demotions", 3)
        report = summarize_document(t.to_document())
        assert "resilience" in report
        assert "5 retries, 1 timeouts, 1 quarantined, 2 pool rebuilds" in report
        assert "3 bucket members demoted to scalar execution" in report

    def test_resilience_section_absent_on_fault_free_runs(self):
        report = summarize_document(Telemetry().to_document())
        assert "resilience" not in report

    def test_lake_section_reports_corrupt_lines(self):
        t = Telemetry(label="lake")
        t.count("lake.entries", 3)
        t.count("lake.reconcile.corrupt_lines", 2)
        report = summarize_document(t.to_document())
        assert "skipped 2 corrupt index lines (compact heals them)" in report

    def test_batching_section_reports_share(self):
        t = Telemetry(label="batched")
        t.count("batch.buckets", 3)
        t.count("batch.member_runs", 13)
        t.count("batch.ragged_fallbacks", 1)
        t.count("executor.tasks.completed", 14)
        t.count("batch.padded_slots", 52)
        t.count("batch.group_slots", 520)
        t.observe("batch.occupancy", 7.0)
        t.observe("batch.occupancy", 4.0)
        t.observe("batch.occupancy", 2.0)
        report = summarize_document(t.to_document())
        assert "13 simulations in 3 lockstep buckets" in report
        assert "92.9% of executed tasks batched" in report
        assert "1 scalar fallbacks" in report
        assert "occupancy mean 4.3 max 7 scenarios/bucket" in report
        assert "padding 52/520 admission slots masked (10.0% waste)" in report


class TestDiffDocuments:
    def test_diff_lists_changed_counters(self):
        cold = build_document(cache_hits=0)
        warm = build_document(cache_hits=4)
        report = diff_documents(cold, warm, "cold", "warm")
        assert "telemetry diff: cold vs warm" in report
        assert "cache.hit" in report
        assert "(+4)" in report

    def test_identical_documents_diff_clean(self):
        doc = build_document()
        report = diff_documents(doc, json.loads(json.dumps(doc)))
        assert "all counters equal" in report


class TestLoadRunTelemetry:
    def test_loads_and_validates(self, tmp_path):
        document = build_document()
        (tmp_path / TELEMETRY_DOCUMENT_NAME).write_text(
            json.dumps(document), encoding="utf-8"
        )
        loaded = load_run_telemetry(tmp_path)
        assert loaded["run_id"] == "run"

    def test_missing_document_names_the_flag(self, tmp_path):
        with pytest.raises(TelemetryError, match="--telemetry"):
            load_run_telemetry(tmp_path)

    def test_unreadable_document_fails(self, tmp_path):
        (tmp_path / TELEMETRY_DOCUMENT_NAME).write_text("{", encoding="utf-8")
        with pytest.raises(TelemetryError, match="unreadable"):
            load_run_telemetry(tmp_path)

    def test_invalid_document_fails_validation(self, tmp_path):
        (tmp_path / TELEMETRY_DOCUMENT_NAME).write_text(
            '{"schema": "other"}', encoding="utf-8"
        )
        with pytest.raises(TelemetryError, match=r"\$\.schema"):
            load_run_telemetry(tmp_path)
