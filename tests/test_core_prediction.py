"""Tests for the analytic fair-sharing Δ-graph model (repro.core.prediction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta import DeltaPoint, DeltaSweep
from repro.core.prediction import (
    PredictionComparison,
    compare_with_sweep,
    predict_sweep,
    predict_write_times,
)
from repro.errors import AnalysisError


class TestPredictWriteTimes:
    def test_simultaneous_fair_sharing_doubles_both(self):
        first, second = predict_write_times(0.0, alone_first=10.0)
        assert first == pytest.approx(20.0)
        assert second == pytest.approx(20.0)

    def test_disjoint_bursts_are_unaffected(self):
        first, second = predict_write_times(50.0, alone_first=10.0)
        assert first == pytest.approx(10.0)
        assert second == pytest.approx(10.0)

    def test_head_start_benefits_the_first_application(self):
        first, second = predict_write_times(5.0, alone_first=10.0)
        # Known closed form: A runs alone 5 s (50%), shares the rest.
        # A finishes at 5 + 0.5/0.05 = 15 s; B then needs 2.5 more seconds
        # of full-rate service after 10 s of half-rate service.
        assert first == pytest.approx(15.0)
        assert second == pytest.approx(15.0)

    def test_negative_delta_mirrors_positive(self):
        f_pos, s_pos = predict_write_times(3.0, alone_first=10.0)
        f_neg, s_neg = predict_write_times(-3.0, alone_first=10.0)
        assert f_neg == pytest.approx(s_pos)
        assert s_neg == pytest.approx(f_pos)

    def test_unfair_share_widens_the_gap_between_the_applications(self):
        fair_first, fair_second = predict_write_times(0.0, 10.0, share_first=0.5)
        unfair_first, unfair_second = predict_write_times(0.0, 10.0, share_first=0.75)
        # The favoured (earlier) application finishes sooner; the model is
        # work-conserving, so the late application still finishes at the same
        # total makespan — the unfairness appears as the gap between the two.
        assert unfair_first < fair_first
        assert unfair_second == pytest.approx(fair_second)
        assert (unfair_second - unfair_first) > (fair_second - fair_first)

    def test_asymmetric_alone_times(self):
        first, second = predict_write_times(0.0, alone_first=10.0, alone_second=2.0)
        # The small application finishes quickly even at half rate; the large
        # one then recovers the full bandwidth.
        assert second == pytest.approx(4.0)
        assert first == pytest.approx(12.0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            predict_write_times(0.0, alone_first=0.0)
        with pytest.raises(AnalysisError):
            predict_write_times(0.0, alone_first=1.0, share_first=1.0)

    @settings(max_examples=80, deadline=None)
    @given(
        delta=st.floats(min_value=-40.0, max_value=40.0, allow_nan=False),
        alone=st.floats(min_value=0.5, max_value=30.0),
        share=st.floats(min_value=0.2, max_value=0.8),
    )
    def test_predictions_are_bounded_by_alone_and_double(self, delta, alone, share):
        first, second = predict_write_times(delta, alone, share_first=share)
        lower = alone * (1.0 - 1e-9)
        upper = alone * (1.0 / min(share, 1.0 - share)) + 1e-6
        assert lower <= first <= upper
        assert lower <= second <= upper

    @settings(max_examples=60, deadline=None)
    @given(delta=st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
           alone=st.floats(min_value=0.5, max_value=30.0))
    def test_fair_sharing_conserves_work(self, delta, alone):
        """Total service received equals total work, whatever the delay."""
        first, second = predict_write_times(delta, alone)
        # Under fair sharing both transfers finish by max(finish) having
        # consumed 2*alone seconds of full-rate service in total.
        finish_first = first
        finish_second = delta + second
        makespan = max(finish_first, finish_second)
        assert makespan >= 2 * alone - 1e-6 or delta > 2 * alone
        assert makespan <= delta + 2 * alone + 1e-6


class TestPredictSweep:
    def test_triangular_shape(self):
        deltas = [-20.0, -10.0, 0.0, 10.0, 20.0]
        predicted = predict_sweep(deltas, alone_time=10.0)
        a = predicted["A"]
        assert a[2] == pytest.approx(20.0)
        assert a[0] == pytest.approx(10.0) and a[-1] == pytest.approx(10.0)
        # symmetric in |delta|
        assert np.allclose(a, a[::-1])

    def test_custom_names(self):
        predicted = predict_sweep([0.0], 5.0, names=("x", "y"))
        assert set(predicted) == {"x", "y"}


def synthetic_sweep(alone=10.0, share=0.5, noise=0.0):
    deltas = np.linspace(-1.5 * alone, 1.5 * alone, 9)
    points = []
    for delta in deltas:
        first, second = predict_write_times(float(delta), alone, share_first=share)
        first *= 1.0 + noise
        second *= 1.0 - noise
        points.append(
            DeltaPoint(
                delta=float(delta),
                write_times={"A": first, "B": second},
                throughputs={"A": 1.0 / first, "B": 1.0 / second},
                window_collapses={"A": 0, "B": 0},
                simulated_time=max(first, second),
            )
        )
    return DeltaSweep(points=points, alone_times={"A": alone, "B": alone})


class TestCompareWithSweep:
    def test_fair_sweep_matches_fair_model(self):
        comparison = compare_with_sweep(synthetic_sweep(share=0.5), share_first=0.5)
        assert isinstance(comparison, PredictionComparison)
        assert comparison.mean_absolute_error == pytest.approx(0.0, abs=1e-9)
        assert comparison.follows_fair_sharing()

    def test_fit_recovers_the_generating_share(self):
        comparison = compare_with_sweep(synthetic_sweep(share=0.7))
        assert comparison.share_first == pytest.approx(0.7, abs=0.051)

    def test_deviation_is_reported(self):
        comparison = compare_with_sweep(synthetic_sweep(share=0.5, noise=0.3),
                                        share_first=0.5)
        assert comparison.max_relative_error > 0.15
        assert not comparison.follows_fair_sharing()

    def test_summary_keys(self):
        summary = compare_with_sweep(synthetic_sweep()).summary()
        assert {"share_first", "mean_absolute_error", "max_relative_error",
                "measured_peak_if", "predicted_peak_if"} <= set(summary)

    def test_single_application_sweep_rejected(self):
        sweep = synthetic_sweep()
        broken = DeltaSweep(
            points=[
                DeltaPoint(p.delta, {"A": p.write_times["A"]}, {"A": 1.0}, {"A": 0},
                           p.simulated_time)
                for p in sweep.points
            ],
            alone_times={"A": 10.0},
        )
        with pytest.raises(AnalysisError):
            compare_with_sweep(broken)

    def test_against_simulator_fair_configuration(self, tiny_contended_result):
        # Not a full sweep (too slow here): just check the simulator's
        # dt=0 point sits near the fair-sharing prediction for HDD/sync-ON.
        # The contended fixture shares one HDD deployment between two equal
        # applications: fair sharing predicts ~2x, the simulator reports the
        # write time directly.
        write_time = tiny_contended_result.write_time("A")
        predicted_first, _ = predict_write_times(0.0, write_time / 2.0)
        assert predicted_first == pytest.approx(write_time, rel=0.35)
