"""Tests for the ``repro-io campaign`` CLI command."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.scale == "reduced"
        assert args.only is None
        assert args.output is None
        assert args.quick is False

    def test_campaign_options(self):
        args = build_parser().parse_args(
            ["campaign", "--scale", "tiny", "--quick", "--only", "table1", "figure5",
             "--output", "report.md"]
        )
        assert args.scale == "tiny"
        assert args.quick
        assert args.only == ["table1", "figure5"]
        assert args.output == "report.md"

    def test_campaign_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--scale", "huge"])


class TestExecution:
    def test_campaign_prints_markdown_to_stdout(self, capsys):
        rc = main(["campaign", "--scale", "tiny", "--quick", "--only", "table1"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "# EXPERIMENTS" in captured.out
        assert "Table I" in captured.out
        assert "event=campaign experiment=table1" in captured.err

    def test_campaign_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "EXPERIMENTS.md"
        rc = main(["campaign", "--scale", "tiny", "--quick", "--only", "table1",
                   "--output", str(target)])
        captured = capsys.readouterr()
        assert rc == 0
        text = target.read_text(encoding="utf-8")
        assert text.startswith("# EXPERIMENTS")
        assert "event=report_written" in captured.err
        # stdout stays clean when writing to a file
        assert "# EXPERIMENTS" not in captured.out

    def test_campaign_unknown_experiment_fails_loudly(self):
        with pytest.raises(Exception):
            main(["campaign", "--scale", "tiny", "--only", "figure99"])


class TestCampaignTelemetry:
    def test_telemetry_dir_writes_validated_documents(self, tmp_path, capsys):
        import json

        from repro.obs.schema import validate_telemetry_document

        tel = tmp_path / "tel"
        rc = main(["campaign", "--scale", "tiny", "--quick", "--only", "table1",
                   "--output", str(tmp_path / "r.md"),
                   "--telemetry-dir", str(tel)])
        assert rc == 0
        assert "event=telemetry_written" in capsys.readouterr().err
        document = json.loads(
            (tel / "telemetry.json").read_text(encoding="utf-8")
        )
        validate_telemetry_document(document)
        assert document["counters"]["executor.tasks.completed"] == 1
        assert document["counters"]["engine.events.processed"] > 0
        categories = {s["category"] for s in document["spans"]}
        assert {"campaign", "task", "simulation"} <= categories
        campaign = next(
            s for s in document["spans"] if s["category"] == "campaign"
        )
        assert campaign["name"] == "campaign:tiny"
        assert (tel / "telemetry_events.jsonl").is_file()

    def test_without_flag_no_telemetry_files(self, tmp_path, capsys):
        rc = main(["campaign", "--scale", "tiny", "--quick", "--only", "table1",
                   "--output", str(tmp_path / "r.md")])
        assert rc == 0
        capsys.readouterr()
        assert not list(tmp_path.glob("**/telemetry.json"))
