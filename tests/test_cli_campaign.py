"""Tests for the ``repro-io campaign`` CLI command."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.scale == "reduced"
        assert args.only is None
        assert args.output is None
        assert args.quick is False

    def test_campaign_options(self):
        args = build_parser().parse_args(
            ["campaign", "--scale", "tiny", "--quick", "--only", "table1", "figure5",
             "--output", "report.md"]
        )
        assert args.scale == "tiny"
        assert args.quick
        assert args.only == ["table1", "figure5"]
        assert args.output == "report.md"

    def test_campaign_rejects_bad_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--scale", "huge"])


class TestExecution:
    def test_campaign_prints_markdown_to_stdout(self, capsys):
        rc = main(["campaign", "--scale", "tiny", "--quick", "--only", "table1"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "# EXPERIMENTS" in captured.out
        assert "Table I" in captured.out
        assert "[campaign] table1" in captured.err

    def test_campaign_writes_output_file(self, tmp_path, capsys):
        target = tmp_path / "EXPERIMENTS.md"
        rc = main(["campaign", "--scale", "tiny", "--quick", "--only", "table1",
                   "--output", str(target)])
        captured = capsys.readouterr()
        assert rc == 0
        text = target.read_text(encoding="utf-8")
        assert text.startswith("# EXPERIMENTS")
        assert "wrote" in captured.err
        # stdout stays clean when writing to a file
        assert "# EXPERIMENTS" not in captured.out

    def test_campaign_unknown_experiment_fails_loudly(self):
        with pytest.raises(Exception):
            main(["campaign", "--scale", "tiny", "--only", "figure99"])
