"""Regenerate the golden-trace fingerprints.

Run after an *intentional* change to the simulated pipeline::

    PYTHONPATH=src python -m tests.regen_goldens

The script re-simulates every golden case under the default (fixed)
stepping policy and rewrites ``tests/goldens/goldens.json``.  Review the
resulting diff carefully — every changed fingerprint is a changed simulation
result that the PR description must account for.
"""

from __future__ import annotations

import json
import sys

from tests._golden_utils import GOLDENS_PATH, compute_golden, golden_cases


def main() -> int:
    """Recompute every golden and rewrite goldens.json; returns exit code."""
    cases = {}
    for name in sorted(golden_cases()):
        digest, payload = compute_golden(golden_cases()[name])
        cases[name] = {"fingerprint": digest, "payload": payload}
        print(f"[goldens] {name:32s} {digest[:16]}", file=sys.stderr)
    document = {
        "_comment": (
            "Golden-trace fingerprints of every preset and archetype "
            "scenario (fixed stepping, tiny scale).  Do not edit by hand; "
            "regenerate with: PYTHONPATH=src python -m tests.regen_goldens"
        ),
        "cases": cases,
    }
    GOLDENS_PATH.parent.mkdir(parents=True, exist_ok=True)
    with open(GOLDENS_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[goldens] wrote {len(cases)} cases to {GOLDENS_PATH}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
