"""Tests of the interference-matrix campaign (runs, cache, reports, store)."""

import json

import pytest

from repro.analysis.interference import (
    MATRIX_SECTION_BEGIN,
    MATRIX_SECTION_END,
    matrix_heatmap_markdown,
    matrix_report_markdown,
    pair_asymmetry,
    severity,
    slowdown,
    update_experiments_section,
)
from repro.analysis.interference import dilation as dilation_metric
from repro.errors import AnalysisError, ConfigurationError, ExperimentError
from repro.runner.store import verify_manifest
from repro.scenarios.matrix import InterferenceMatrix, run_interference_matrix, store_matrix
from repro.scenarios.spec import ScenarioSpec

ARCHES = ["checkpoint", "analytics"]


@pytest.fixture(scope="module")
def tiny_matrix():
    """One cached 2x2 matrix shared by every read-only test."""
    return run_interference_matrix(ARCHES, "tiny")


class TestMetrics:
    def test_slowdown(self):
        assert slowdown(2.0, 1.0) == 2.0
        assert slowdown(0.5, 1.0) == 0.5
        with pytest.raises(AnalysisError):
            slowdown(1.0, 0.0)
        with pytest.raises(AnalysisError):
            slowdown(-1.0, 1.0)

    def test_dilation(self):
        assert dilation_metric(3.0, 1.0, 2.0) == 1.5
        with pytest.raises(AnalysisError):
            dilation_metric(1.0, 0.0, 0.0)

    def test_pair_asymmetry(self):
        assert pair_asymmetry(2.0, 1.5) == pytest.approx(0.5)
        assert pair_asymmetry(1.0, 1.0) == 0.0

    def test_severity_bands(self):
        assert severity(1.0) == "none"
        assert severity(1.1) == "mild"
        assert severity(1.3) == "moderate"
        assert severity(1.7) == "high"
        assert severity(2.5) == "severe"


class TestCampaign:
    def test_matrix_is_complete(self, tiny_matrix):
        m = tiny_matrix
        assert m.names == ARCHES
        assert set(m.alone) == set(ARCHES)
        assert len(m.cells) == 3  # N(N+1)/2 unordered pairs incl. diagonal
        for victim in ARCHES:
            for aggressor in ARCHES:
                assert m.slowdown_of(victim, aggressor) > 0.9

    def test_co_running_hurts(self, tiny_matrix):
        """Both self-pairings on a contended deployment slow each side down."""
        for name in ARCHES:
            assert tiny_matrix.slowdown_of(name, name) > 1.1

    def test_cells_carry_root_cause(self, tiny_matrix):
        for cell in tiny_matrix.cells_in_order():
            assert cell.root_cause
            assert cell.root_cause_scores
            assert cell.window_collapses >= 0
            assert cell.makespan > 0

    def test_worst_pair_and_describe(self, tiny_matrix):
        worst = tiny_matrix.worst_pair()
        peak = max(worst.slowdown_a, worst.slowdown_b)
        for cell in tiny_matrix.cells_in_order():
            assert peak >= max(cell.slowdown_a, cell.slowdown_b)
        assert worst.a in tiny_matrix.describe()

    def test_needs_two_archetypes(self):
        with pytest.raises(ExperimentError):
            run_interference_matrix(["checkpoint"], "tiny")

    def test_rejects_duplicate_names(self):
        with pytest.raises(ExperimentError, match="duplicate"):
            run_interference_matrix(["checkpoint", "checkpoint"], "tiny")

    def test_named_specs_allow_same_archetype_twice(self):
        m = run_interference_matrix(
            [ScenarioSpec("checkpoint"),
             ScenarioSpec("checkpoint", name="ckpt2", procs_per_node=1)],
            "tiny",
        )
        assert m.names == ["checkpoint", "ckpt2"]
        assert m.slowdown_of("ckpt2", "checkpoint") > 0.9

    def test_rejects_unknown_options(self):
        with pytest.raises(ConfigurationError, match="unknown matrix options"):
            run_interference_matrix(ARCHES, "tiny", wormhole=True)

    def test_cache_round_trip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        seen = []
        m1 = run_interference_matrix(
            ARCHES, "tiny", cache_dir=cache_dir,
            progress=lambda t, c: seen.append((t, c)),
        )
        assert seen and all(not cached for _, cached in seen)
        seen.clear()
        m2 = run_interference_matrix(
            ARCHES, "tiny", cache_dir=cache_dir,
            progress=lambda t, c: seen.append((t, c)),
        )
        assert seen and all(cached for _, cached in seen)  # 100% warm hits
        assert m1.to_dict() == m2.to_dict()

    def test_options_split_the_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_interference_matrix(ARCHES, "tiny", cache_dir=cache_dir)
        seen = []
        run_interference_matrix(
            ARCHES, "tiny", cache_dir=cache_dir, delay=0.25,
            progress=lambda t, c: seen.append(c),
        )
        # Alone runs are delay-independent (same fingerprint -> cache hits);
        # every pair run re-executes under the new delay.
        assert seen.count(True) == len(ARCHES)
        assert seen.count(False) == 3

    def test_parallel_equals_serial(self, tmp_path, tiny_matrix):
        parallel = run_interference_matrix(ARCHES, "tiny", jobs=2)
        assert parallel.to_dict() == tiny_matrix.to_dict()


class TestReports:
    def test_heatmap_has_full_grid(self, tiny_matrix):
        heatmap = matrix_heatmap_markdown(tiny_matrix)
        lines = heatmap.splitlines()
        assert len(lines) == 2 + len(ARCHES)
        for name in ARCHES:
            assert name in lines[0]

    def test_report_mentions_everything(self, tiny_matrix):
        text = matrix_report_markdown(tiny_matrix)
        for name in ARCHES:
            assert name in text
        assert "Interference matrix" in text
        assert "dominant root cause" in text
        assert "repro-io matrix --archetypes checkpoint,analytics" in text

    def test_update_creates_file_with_markers(self, tmp_path, tiny_matrix):
        path = tmp_path / "EXPERIMENTS.md"
        section = matrix_report_markdown(tiny_matrix)
        content = update_experiments_section(str(path), section)
        assert path.read_text(encoding="utf-8") == content
        assert content.startswith(MATRIX_SECTION_BEGIN)
        assert MATRIX_SECTION_END in content

    def test_update_is_idempotent(self, tmp_path, tiny_matrix):
        path = tmp_path / "EXPERIMENTS.md"
        section = matrix_report_markdown(tiny_matrix)
        first = update_experiments_section(str(path), section)
        second = update_experiments_section(str(path), section)
        assert first == second  # byte-identical on re-run

    def test_update_preserves_surrounding_report(self, tmp_path, tiny_matrix):
        path = tmp_path / "EXPERIMENTS.md"
        path.write_text("# EXPERIMENTS\n\ncampaign prose\n", encoding="utf-8")
        section = matrix_report_markdown(tiny_matrix)
        content = update_experiments_section(str(path), section)
        assert content.startswith("# EXPERIMENTS\n")
        assert "campaign prose" in content
        # Replacing the section again touches only the marked block.
        replaced = update_experiments_section(str(path), "NEW SECTION")
        assert "campaign prose" in replaced
        assert "NEW SECTION" in replaced
        assert section.splitlines()[0] not in replaced


class TestStore:
    def test_store_writes_verifiable_run(self, tmp_path, tiny_matrix):
        run_dir = store_matrix(tiny_matrix, str(tmp_path / "runs"))
        ok, issues = verify_manifest(run_dir)
        assert ok, issues
        with open(f"{run_dir}/matrix.json", "r", encoding="utf-8") as handle:
            document = json.load(handle)
        rebuilt = InterferenceMatrix.from_dict(document)
        assert rebuilt.to_dict() == tiny_matrix.to_dict()

    def test_store_is_deterministic(self, tmp_path, tiny_matrix):
        root = tmp_path / "runs"
        first = store_matrix(tiny_matrix, str(root))
        manifest_1 = (root / first.split("/")[-1] / "manifest.json").read_bytes()
        second = store_matrix(tiny_matrix, str(root))
        assert first == second  # same fingerprint-derived run id
        manifest_2 = (root / second.split("/")[-1] / "manifest.json").read_bytes()
        assert manifest_1 == manifest_2  # byte-identical re-store


class TestDegradationAndResume:
    def test_matrix_run_id_is_deterministic_and_input_only(self):
        from repro.scenarios.matrix import matrix_run_id

        a = matrix_run_id(ARCHES, "tiny", device="hdd")
        assert a == matrix_run_id(ARCHES, "tiny", device="hdd")
        assert a.startswith("matrix_")
        assert a != matrix_run_id(ARCHES, "tiny", device="ssd")
        assert a != matrix_run_id(ARCHES, "reduced", device="hdd")

    def test_transient_bucket_fault_demotes_to_scalar(self, tmp_path):
        """A failing bucket degrades its members to scalar execution.

        The fault fires once per member on attempt 0 (the bucket pass);
        the demoted scalar attempt re-injects, and the scalar retry then
        completes — so the matrix comes out whole, with the demotion and
        retries visible in the counters and no quarantined tasks.
        """
        from repro.obs.telemetry import telemetry_session
        from repro.runner.chaos import FaultPlan, FaultSpec, fault_plan
        from repro.runner.executor import FaultPolicy

        policy = FaultPolicy(max_retries=2, backoff_base_s=0.001,
                             backoff_cap_s=0.002)
        plan = FaultPlan.of(
            FaultSpec(match="pair:checkpoint+analytics", times=1)
        )
        with telemetry_session("demotion") as telemetry:
            with fault_plan(plan):
                matrix = run_interference_matrix(
                    ARCHES, "tiny", cache_dir=str(tmp_path / "cache"),
                    fault_policy=policy,
                )
            counters = telemetry.snapshot()["counters"]
        assert counters["batch.demotions"] >= 1
        assert matrix.failed_tasks == []
        assert matrix.cell("checkpoint", "analytics") is not None

    def test_quarantined_pair_yields_partial_matrix(self, tmp_path):
        from repro.runner.chaos import FaultPlan, FaultSpec, fault_plan
        from repro.runner.executor import FaultPolicy

        policy = FaultPolicy(max_retries=0, backoff_base_s=0.001,
                             backoff_cap_s=0.002)
        plan = FaultPlan.of(
            FaultSpec(match="pair:checkpoint+analytics", times=99)
        )
        with fault_plan(plan):
            matrix = run_interference_matrix(
                ARCHES, "tiny", cache_dir=str(tmp_path / "cache"),
                fault_policy=policy,
            )
        assert [f["task_id"] for f in matrix.failed_tasks] == [
            "pair:checkpoint+analytics"
        ]
        assert matrix.cell_or_none("checkpoint", "analytics") is None
        with pytest.raises(AnalysisError):
            matrix.cell("checkpoint", "analytics")
        assert "quarantined" in matrix.describe()
        # The report renders the degraded matrix without raising, with a
        # dash for the missing cell and the quarantine table at the end.
        report = matrix_report_markdown(matrix)
        assert "Failed tasks (quarantined)" in report
        assert "—" in matrix_heatmap_markdown(matrix)

    def test_failed_tasks_round_trip_and_stay_absent_when_clean(self, tiny_matrix):
        document = tiny_matrix.to_dict()
        assert "failed_tasks" not in document  # clean runs keep the old shape
        clone = InterferenceMatrix.from_dict(document)
        assert clone.failed_tasks == []
