"""Property-based tests (hypothesis) over every workload archetype.

Three laws hold for *any* archetype instance, however it is sized:

* **non-negative queues** — every recorded buffer/progress/utilization
  series stays within its physical range (no negative fill, no progress
  beyond completion);
* **conservation** — each application group completes exactly the bytes its
  spec issues, and the phase brackets are well-ordered;
* **adaptive/fixed agreement** — adaptive stepping reproduces the fixed
  phase times within the :class:`~repro.config.control.SteppingPolicy`
  tolerance, in no more steps.

The strategies deliberately draw *small* instances (1-2 nodes, <= 2 MiB per
process) so hundreds of simulations stay fast; the laws are size-free.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.config.control import SteppingPolicy
from repro.model.simulator import simulate_scenario
from repro.scenarios.archetypes import archetype_names, get_archetype
from repro.scenarios.spec import ScenarioSpec, build_scenario

ARCHETYPES = archetype_names()

#: Small-instance overrides: enough variety to exercise every sizing path,
#: small enough that one simulation takes milliseconds.
overrides_strategy = st.fixed_dictionaries({
    "nodes": st.sampled_from([None, 1, 2]),
    "procs_per_node": st.sampled_from([None, 1, 2]),
    "bytes_per_process": st.sampled_from(
        [None, 256 * units.KiB, 1 * units.MiB, 2 * units.MiB]
    ),
    "start_time": st.floats(min_value=0.0, max_value=0.5),
})


def _spec(archetype, overrides):
    return ScenarioSpec(
        archetype=archetype,
        nodes=overrides["nodes"],
        procs_per_node=overrides["procs_per_node"],
        bytes_per_process=overrides["bytes_per_process"],
        start_time=overrides["start_time"],
    )


def _simulate(spec, stepping=None):
    built = build_scenario([spec], "tiny", stepping=stepping)
    return built, simulate_scenario(built.scenario)


class TestArchetypeInvariants:
    """Queues and conservation, one drawn instance at a time."""

    @pytest.mark.parametrize("archetype", ARCHETYPES)
    @given(overrides=overrides_strategy)
    @settings(max_examples=6, deadline=None)
    def test_queues_and_conservation(self, archetype, overrides):
        spec = _spec(archetype, overrides)
        built, result = _simulate(spec)

        # Conservation: every group writes exactly what its spec issues.
        expected = {
            app.name: app.total_bytes for app in built.scenario.applications
        }
        for name, app in result.applications.items():
            assert app.bytes_written == pytest.approx(expected[name], rel=1e-9)
            assert app.end_time >= app.start_time
            assert app.start_time >= spec.start_time - 1e-12
            assert app.window_collapses >= 0

        # Non-negative queues and bounded fractions, across every trace.
        for series_name in result.recorder.series_names():
            values = result.recorder.get_series(series_name).values
            assert np.all(np.isfinite(values)), series_name
            assert np.all(values >= 0.0), series_name
            if series_name.startswith("progress.") or "occupancy" in series_name:
                assert np.all(values <= 1.0 + 1e-9), series_name

        # Component statistics are physical utilizations/pressures.
        comp = result.components
        assert 0.0 <= comp.client_nic_utilization <= 1.0 + 1e-9
        assert 0.0 <= comp.server_nic_utilization <= 1.0 + 1e-9
        assert np.all(comp.buffer_pressure >= 0.0)
        assert np.all(comp.buffer_pressure <= 1.0 + 1e-9)
        assert np.all(comp.server_utilization >= 0.0)
        assert np.all(comp.device_utilization >= 0.0)


#: Smaller draw for the agreement test: it runs two simulations per example.
adaptive_overrides_strategy = st.fixed_dictionaries({
    "nodes": st.sampled_from([None, 1]),
    "procs_per_node": st.sampled_from([1, 2]),
    "bytes_per_process": st.sampled_from([512 * units.KiB, 1 * units.MiB]),
    "start_time": st.sampled_from([0.0, 0.25]),
})


class TestAdaptiveAgreement:
    """Adaptive stepping tracks fixed stepping within its tolerance."""

    @pytest.mark.parametrize("archetype", ARCHETYPES)
    @given(overrides=adaptive_overrides_strategy)
    @settings(max_examples=2, deadline=None)
    def test_adaptive_matches_fixed_within_tolerance(self, archetype, overrides):
        spec = _spec(archetype, overrides)
        policy = SteppingPolicy.adaptive(tolerance=0.05)
        built, fixed = _simulate(spec)
        _, adaptive = _simulate(spec, stepping=policy)

        # Time is quantized: a phase boundary cannot be resolved finer than
        # one base step, and every operation boundary of an op-dominated
        # workload re-quantizes — so the error budget is the policy's
        # relative tolerance plus one step per operation boundary.
        step = built.scenario.control.resolve_step(
            built.scenario.estimate_duration()
        )
        max_ops = max(
            app.pattern.requests_per_process
            for app in built.scenario.applications
        )

        assert adaptive.n_steps <= fixed.n_steps
        for name, app in fixed.applications.items():
            expected = app.end_time - app.start_time
            got = (
                adaptive.applications[name].end_time
                - adaptive.applications[name].start_time
            )
            budget = policy.tolerance * expected + step * (1 + max_ops) + 1e-12
            assert abs(got - expected) <= budget
        assert abs(adaptive.simulated_time - fixed.simulated_time) <= (
            policy.tolerance * fixed.simulated_time + step * (1 + max_ops) + 1e-12
        )


class TestSpecStrategies:
    """Cheap structural laws (no simulation) at higher example counts."""

    @given(
        archetype=st.sampled_from(ARCHETYPES),
        overrides=overrides_strategy,
    )
    @settings(max_examples=60, deadline=None)
    def test_build_is_valid_and_sized(self, archetype, overrides):
        spec = _spec(archetype, overrides)
        built = build_scenario([spec], "tiny")
        arch = get_archetype(archetype)
        assert len(built.groups) == 1
        assert len(built.groups[0]) == arch.n_groups
        scenario = built.scenario
        assert len(scenario.applications) == arch.n_groups
        for app in scenario.applications:
            assert app.total_bytes > 0
            assert app.pattern.effective_request_size <= app.pattern.bytes_per_process
            if overrides["nodes"] is not None:
                assert app.n_nodes == max(1, overrides["nodes"] // arch.n_groups)
            if overrides["procs_per_node"] is not None:
                assert app.procs_per_node == overrides["procs_per_node"]

    @given(
        archetype=st.sampled_from(ARCHETYPES),
        overrides=overrides_strategy,
        second=st.sampled_from(ARCHETYPES),
        delay=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_pairing_namespaces_and_delays(self, archetype, overrides, second, delay):
        spec_a = _spec(archetype, overrides)
        spec_b = ScenarioSpec(archetype=second)
        built = build_scenario([spec_a, spec_b], "tiny", delay=delay)
        names = [app.name for app in built.scenario.applications]
        assert len(set(names)) == len(names)
        assert all(n.startswith("A:") for n in built.groups[0])
        assert all(n.startswith("B:") for n in built.groups[1])
        b_start = min(
            app.start_time
            for app in built.scenario.applications
            if app.name in built.groups[1]
        )
        assert b_start == pytest.approx(delay, abs=1e-12)
