"""Tests for the cross-application I/O scheduling (coordination) extension."""

import pytest

from repro.config.presets import make_scenario, make_single_app_scenario
from repro.errors import ExperimentError
from repro.mitigation.scheduling import (
    CoordinationOutcome,
    coordinated_start_times,
    evaluate_coordination,
)


@pytest.fixture(scope="module")
def tiny_hdd_scenario():
    return make_scenario("tiny", device="hdd", sync_mode="sync-on")


@pytest.fixture(scope="module")
def outcome(tiny_hdd_scenario):
    """Coordination evaluation at three delays (one clearly overlapping)."""
    return evaluate_coordination(tiny_hdd_scenario, deltas=[-0.2, 0.0, 5.0])


class TestCoordinatedStartTimes:
    def test_non_overlapping_requests_unchanged(self, tiny_hdd_scenario):
        alone = {"A": 1.0, "B": 1.0}
        starts = coordinated_start_times(tiny_hdd_scenario, delta=5.0, alone_times=alone)
        assert starts["A"] == 0.0
        assert starts["B"] == 5.0

    def test_overlapping_requests_are_serialized(self, tiny_hdd_scenario):
        alone = {"A": 2.0, "B": 2.0}
        starts = coordinated_start_times(tiny_hdd_scenario, delta=0.5, alone_times=alone)
        assert starts["A"] == 0.0
        assert starts["B"] == pytest.approx(2.0)

    def test_negative_delta_serializes_the_other_way(self, tiny_hdd_scenario):
        alone = {"A": 2.0, "B": 2.0}
        starts = coordinated_start_times(tiny_hdd_scenario, delta=-1.0, alone_times=alone)
        # B asked to start first; A is pushed until B is done.
        assert starts["B"] == -1.0
        assert starts["A"] == pytest.approx(1.0)

    def test_slack_is_respected(self, tiny_hdd_scenario):
        alone = {"A": 2.0, "B": 2.0}
        starts = coordinated_start_times(
            tiny_hdd_scenario, delta=0.0, alone_times=alone, slack=0.5
        )
        assert starts["B"] == pytest.approx(2.5)

    def test_single_application_rejected(self):
        single = make_single_app_scenario("tiny", device="hdd", sync_mode="sync-on")
        with pytest.raises(ExperimentError):
            coordinated_start_times(single, 0.0, {"A": 1.0})


class TestEvaluateCoordination:
    def test_returns_one_point_per_delta(self, outcome):
        assert isinstance(outcome, CoordinationOutcome)
        assert [p.delta for p in outcome.points] == [-0.2, 0.0, 5.0]
        assert outcome.applications == ("A", "B")

    def test_coordination_removes_write_time_interference(self, outcome):
        assert outcome.peak_interference_factor(coordinated=True) < 1.3
        assert outcome.peak_interference_factor(coordinated=False) > 1.5

    def test_scheduler_wait_appears_only_when_phases_overlap(self, outcome):
        overlapping = outcome.points[1]   # dt = 0
        disjoint = outcome.points[2]      # dt >> alone time
        assert max(overlapping.scheduler_wait.values()) > 0.0
        assert max(disjoint.scheduler_wait.values()) == pytest.approx(0.0)

    def test_coordination_trades_interference_for_waiting(self, outcome):
        point = outcome.points[1]  # dt = 0: fully overlapping request
        # Write time improves for the delayed application...
        assert point.write_time_improvement("B") > 0.0
        # ...but its completion (wait + write) does not improve by as much,
        # which is the paper's caveat about scheduling-level solutions.
        assert point.coordinated_completion_times["B"] >= (
            point.coordinated_write_times["B"]
        )

    def test_rows_and_summary_are_flat(self, outcome):
        rows = outcome.rows()
        assert len(rows) == 3
        assert {"delta", "interfering_write_time.A", "coordinated_write_time.B",
                "scheduler_wait.B"} <= set(rows[0])
        summary = outcome.summary()
        assert {"peak_if_interfering", "peak_if_coordinated",
                "mean_completion_change", "max_scheduler_wait"} <= set(summary)
        assert summary["max_scheduler_wait"] > 0.0

    def test_single_application_rejected(self):
        single = make_single_app_scenario("tiny", device="hdd", sync_mode="sync-on")
        with pytest.raises(ExperimentError):
            evaluate_coordination(single, deltas=[0.0])

    def test_default_deltas_generated(self, tiny_hdd_scenario):
        outcome = evaluate_coordination(tiny_hdd_scenario, n_points=3)
        assert len(outcome.points) >= 3
