"""Tests of the preallocated stepping workspace and its ownership contract.

The contract (see the module docstring of :mod:`repro.model.stepper`): every
named workspace slot is written only by its owning phase; later phases of the
same step read it at most.  The test executes one step phase by phase on a
live contended model, snapshotting each phase's owned slots as it completes
and diffing them after every subsequent phase.
"""

import numpy as np
import pytest

from repro.config.presets import make_scenario
from repro.model.simulator import IOPathSimulator
from repro.model.stepper import ModelStepper, StepContext, StepWorkspace
from repro.sim.engine import Simulator


def contended_runner(n_warmup_steps: int = 40):
    """A tiny contended simulation advanced into its active phase."""
    scenario = make_scenario("tiny", device="hdd", sync_mode="sync-on")
    runner = IOPathSimulator(scenario)
    engine = Simulator(start_time=0.0)
    for index in range(len(runner.state.applications)):
        runner.stepper.start_application(engine, index)
    dt = runner.step_size
    for _ in range(n_warmup_steps):
        runner.stepper.step(engine, dt)
        engine._now += dt
    return runner, engine


class TestOwnershipContract:
    def test_phase_slot_names_exist(self):
        workspace = StepWorkspace(4, 2, 2)
        for phase, slots in StepWorkspace.PHASE_SLOTS.items():
            for slot in slots:
                assert hasattr(workspace, slot), (phase, slot)
        for slot in StepWorkspace.SCRATCH_SLOTS:
            assert hasattr(workspace, slot)
            assert slot.startswith("tmp_")

    def test_phases_cover_step_order(self):
        assert tuple(StepWorkspace.PHASE_SLOTS) == ModelStepper.PHASES[:-1]

    def test_no_phase_writes_a_slot_owned_by_an_earlier_phase(self):
        runner, engine = contended_runner()
        stepper = runner.stepper
        workspace = stepper.workspace
        state = stepper.state
        assert state.buffers.fill.sum() > 0, "warmup did not reach contention"

        dt = runner.step_size
        stepper._refresh_dt(dt)
        ctx = StepContext(now=engine.now, dt=dt)
        phase_calls = {
            "workload_mix": lambda: stepper._phase_workload_mix(ctx),
            "drain": lambda: stepper._phase_drain(ctx),
            "offer": lambda: stepper._phase_offer(ctx),
            "admission": lambda: stepper._phase_admission(ctx),
            "window_dynamics": lambda: stepper._phase_window_dynamics(ctx),
            "accounting": lambda: stepper._phase_accounting(ctx),
            "completion": lambda: stepper._phase_completion(engine),
        }
        snapshots = {}
        completed = []
        for phase in ModelStepper.PHASES:
            phase_calls[phase]()
            for earlier in completed:
                for slot, snap in snapshots[earlier].items():
                    current = getattr(workspace, slot)
                    assert np.array_equal(current, snap), (
                        f"phase {phase!r} overwrote slot {slot!r} owned by "
                        f"phase {earlier!r}"
                    )
            if phase != "completion":
                snapshots[phase] = {
                    slot: array.copy()
                    for slot, array in workspace.owned_slots(phase).items()
                }
                completed.append(phase)

    def test_context_fields_alias_workspace_slots(self):
        runner, engine = contended_runner(n_warmup_steps=5)
        stepper = runner.stepper
        workspace = stepper.workspace
        ctx = stepper._ctx
        assert ctx.busy is workspace.busy
        assert ctx.n_streams is workspace.n_streams
        assert ctx.avg_frag is workspace.avg_frag
        assert ctx.drain_rate is workspace.drain_rate
        assert ctx.rtt_eff is workspace.rtt_eff
        assert ctx.desired is workspace.desired
        assert ctx.loss_prone is workspace.loss_prone


class TestAllocationFlatness:
    def test_steady_state_steps_do_not_grow_live_blocks(self):
        """The workspace kernel must not accumulate live allocations.

        ``sys.getallocatedblocks`` counts live CPython blocks: per-step
        temporaries that are freed within the step net out to ~zero.  Trace
        marks are disabled so the recorder's (intentional) growth does not
        mask a kernel leak.
        """
        import sys

        runner, engine = contended_runner()
        runner.recorder.config.record_marks = False
        stepper = runner.stepper
        dt = runner.step_size
        for _ in range(10):  # settle caches/interned keys
            stepper.step(engine, dt)
            engine._now += dt
        before = sys.getallocatedblocks()
        n_steps = 50
        for _ in range(n_steps):
            stepper.step(engine, dt)
            engine._now += dt
        grown = sys.getallocatedblocks() - before
        assert grown < 2 * n_steps, (
            f"stepping grew {grown} live blocks over {n_steps} steps; "
            "the kernel should be allocation-flat in steady state"
        )

    def test_dt_invariants_refresh_only_on_change(self):
        runner, engine = contended_runner(n_warmup_steps=1)
        stepper = runner.stepper
        dt = runner.step_size
        stepper.step(engine, dt)
        engine._now += dt
        cached = stepper._node_caps_dt
        expected = stepper._node_caps * dt
        assert np.array_equal(cached, expected)
        stepper.step(engine, dt)
        engine._now += dt
        assert stepper._node_caps_dt is cached  # same buffer, untouched
        stepper.step(engine, dt * 2)
        assert np.array_equal(stepper._node_caps_dt, stepper._node_caps * dt * 2)


class TestProfilerHook:
    def test_profiler_collects_every_phase(self):
        from repro.perf.counters import StepProfiler

        runner, engine = contended_runner(n_warmup_steps=2)
        profiler = StepProfiler()
        runner.stepper.profiler = profiler
        dt = runner.step_size
        for _ in range(3):
            runner.stepper.step(engine, dt)
            engine._now += dt
        runner.stepper.profiler = None
        report = profiler.report()
        assert set(report) == set(ModelStepper.PHASES)
        for phase, stats in report.items():
            assert stats["calls"] == 3, phase
            assert stats["ns"] > 0, phase

    def test_profiled_and_plain_steps_agree(self):
        """Attaching the profiler must not change the simulation."""
        from repro.perf.counters import StepProfiler

        results = []
        for profiled in (False, True):
            runner, engine = contended_runner(n_warmup_steps=0)
            if profiled:
                runner.stepper.profiler = StepProfiler()
            dt = runner.step_size
            for _ in range(30):
                runner.stepper.step(engine, dt)
                engine._now += dt
            results.append(
                (
                    runner.state.send_remaining.copy(),
                    runner.state.windows.cwnd.copy(),
                    runner.state.buffers.fill.copy(),
                )
            )
        for plain, instrumented in zip(*results):
            assert np.array_equal(plain, instrumented)


class TestTraceSamplingSkip:
    def test_records_series_property(self):
        from repro.sim.tracing import TraceConfig

        assert TraceConfig().records_series
        assert TraceConfig.full().records_series
        assert not TraceConfig.minimal().records_series

    def test_disabled_trace_schedules_no_sampling(self):
        """With every series category off, the sampling event is never
        scheduled — the run executes fewer events but simulates identically."""
        from repro.model.simulator import simulate_scenario
        from repro.sim.tracing import TraceConfig

        default = simulate_scenario(
            make_scenario("tiny", device="hdd", sync_mode="sync-on")
        )
        minimal = simulate_scenario(
            make_scenario(
                "tiny", device="hdd", sync_mode="sync-on",
                trace=TraceConfig.minimal(),
            )
        )
        assert minimal.recorder.series_names() == []
        assert default.recorder.series_names() != []
        assert minimal.n_steps == default.n_steps
        for name, app in default.applications.items():
            assert minimal.applications[name].end_time == app.end_time


class TestCompletionVectorization:
    @pytest.mark.parametrize("archetype", ["analytics", "smallfile"])
    def test_non_collective_archetypes_still_complete(self, archetype):
        from repro.model.simulator import simulate_scenario
        from repro.scenarios.spec import build_scenario

        scenario = build_scenario([archetype], "tiny").scenario
        result = simulate_scenario(scenario)
        for app in result.applications.values():
            assert np.isfinite(app.end_time)
