"""Round-trip tests for the result-object serialization layer.

The runner cache, the run store, and cross-process transport all move results
as their ``to_dict()`` JSON form; these tests pin that the round trip is
lossless — including through an actual ``json.dumps``/``loads`` cycle, which
is stricter than pickling (tuples, numpy scalars, and dict key types all
surface here).
"""

import json

import pytest

from repro.analysis.comparison import ClaimCheck, check_experiment
from repro.core.delta import DeltaPoint, DeltaSweep, jsonify
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import run_experiment


@pytest.fixture(scope="module")
def table1_result():
    return run_experiment("table1", scale="tiny", quick=True)


@pytest.fixture(scope="module")
def figure2_result():
    """A sweep-bearing experiment (tables + sweeps + metrics + notes)."""
    return run_experiment("figure2", scale="tiny", quick=True)


def _json_cycle(data):
    return json.loads(json.dumps(data))


class TestJsonify:
    def test_numpy_scalars_become_python(self):
        import numpy as np

        out = jsonify({"f": np.float64(1.5), "i": np.int64(2), "b": np.bool_(True),
                       "a": np.array([1.0, 2.0]), "t": (1, 2)})
        assert out == {"f": 1.5, "i": 2, "b": True, "a": [1.0, 2.0], "t": [1, 2]}
        json.dumps(out)  # fully JSON-serializable

    def test_plain_values_pass_through(self):
        assert jsonify({"s": "x", "n": None, "f": 0.25}) == {"s": "x", "n": None, "f": 0.25}


class TestDeltaSweepRoundTrip:
    def test_point_round_trip(self):
        point = DeltaPoint(
            delta=-1.5,
            write_times={"A": 2.0, "B": 3.5},
            throughputs={"A": 10.0, "B": 7.0},
            window_collapses={"A": 0, "B": 4},
            simulated_time=9.0,
        )
        assert DeltaPoint.from_dict(_json_cycle(point.to_dict())) == point

    def test_sweep_round_trip_preserves_metrics(self, figure2_result):
        for name in figure2_result.sweeps:
            sweep = figure2_result.sweep(name)
            restored = DeltaSweep.from_dict(_json_cycle(sweep.to_dict()))
            assert restored.to_dict() == sweep.to_dict()
            assert restored.peak_interference_factor() == sweep.peak_interference_factor()
            assert restored.asymmetry_index() == sweep.asymmetry_index()
            assert restored.total_collapses() == sweep.total_collapses()


class TestExperimentResultRoundTrip:
    def test_table_only_result(self, table1_result):
        restored = ExperimentResult.from_dict(_json_cycle(table1_result.to_dict()))
        assert restored.to_dict() == table1_result.to_dict()
        assert restored.experiment_id == "table1"
        assert restored.tables == table1_result.tables

    def test_sweep_bearing_result(self, figure2_result):
        restored = ExperimentResult.from_dict(_json_cycle(figure2_result.to_dict()))
        assert restored.to_dict() == figure2_result.to_dict()
        assert set(restored.sweeps) == set(figure2_result.sweeps)
        assert restored.metrics == figure2_result.metrics
        assert restored.notes == figure2_result.notes

    def test_report_renders_identically(self, table1_result):
        restored = ExperimentResult.from_dict(_json_cycle(table1_result.to_dict()))
        assert restored.report() == table1_result.report()


class TestClaimCheckRoundTrip:
    def test_checks_round_trip(self, table1_result):
        for check in check_experiment(table1_result):
            restored = ClaimCheck.from_dict(_json_cycle(check.to_dict()))
            assert restored == check
            assert restored.describe() == check.describe()

    def test_claim_inlined_not_referenced(self, table1_result):
        check = check_experiment(table1_result)[0]
        data = check.to_dict()
        assert data["claim"]["statement"]
        assert data["claim"]["section"]
