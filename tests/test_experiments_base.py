"""Tests for the ExperimentResult container shared by all reproductions."""

import pytest

from repro.core.delta import DeltaPoint, DeltaSweep
from repro.errors import AnalysisError
from repro.experiments.base import ExperimentResult, optional_int


def make_sweep(alone=2.0):
    points = [
        DeltaPoint(delta=d, write_times={"A": alone * f, "B": alone * f},
                   throughputs={"A": 1.0, "B": 1.0},
                   window_collapses={"A": 0, "B": 3},
                   simulated_time=alone * f)
        for d, f in ((-alone, 1.0), (0.0, 2.0), (alone, 1.0))
    ]
    return DeltaSweep(points=points, alone_times={"A": alone, "B": alone})


@pytest.fixture()
def result():
    res = ExperimentResult(experiment_id="figureX", title="synthetic experiment",
                           paper_reference="Figure X")
    res.add_table("summary", [{"device": "HDD", "slowdown": 2.5},
                              {"device": "RAM", "slowdown": 1.5}])
    res.add_sweep("hdd", make_sweep())
    res.add_metric("headline", 1.23)
    res.add_note("a note about the shape")
    return res


class TestAccessors:
    def test_table_roundtrip(self, result):
        assert result.table("summary")[0]["device"] == "HDD"

    def test_missing_table_raises_with_alternatives(self, result):
        with pytest.raises(AnalysisError) as excinfo:
            result.table("nope")
        assert "summary" in str(excinfo.value)

    def test_empty_table_rejected(self, result):
        with pytest.raises(AnalysisError):
            result.add_table("empty", [])

    def test_sweep_roundtrip_and_derived_metrics(self, result):
        sweep = result.sweep("hdd")
        assert sweep.peak_interference_factor() == pytest.approx(2.0)
        # add_sweep records headline metrics automatically
        assert result.metric("hdd.peak_interference_factor") == pytest.approx(2.0)
        assert "hdd.asymmetry_index" in result.metrics
        assert "hdd.flatness_index" in result.metrics

    def test_missing_sweep_and_metric_raise(self, result):
        with pytest.raises(AnalysisError):
            result.sweep("nope")
        with pytest.raises(AnalysisError):
            result.metric("nope")

    def test_summary_is_a_copy(self, result):
        summary = result.summary()
        summary["headline"] = 999.0
        assert result.metric("headline") == pytest.approx(1.23)


class TestReporting:
    def test_report_contains_everything(self, result):
        text = result.report()
        assert "figureX: synthetic experiment" in text
        assert "[table] summary" in text
        assert "[delta-graph] hdd" in text
        assert "[metrics]" in text
        assert "note: a note about the shape" in text

    def test_table_csv_export(self, result):
        csv_text = result.table_csv("summary")
        lines = csv_text.strip().splitlines()
        assert lines[0] == "device,slowdown"
        assert len(lines) == 3


class TestHelpers:
    def test_optional_int(self):
        assert optional_int(None, 7) == 7
        assert optional_int(3, 7) == 3
        assert optional_int(3.9, 7) == 3
