"""Tests for the Δ-graph metrics."""

import pytest

from repro.core import metrics
from repro.errors import AnalysisError


class TestSlowdown:
    def test_basic(self):
        assert metrics.slowdown(20.0, 10.0) == 2.0
        assert metrics.interference_factor(33.4, 13.4) == pytest.approx(2.4925, rel=1e-3)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            metrics.slowdown(1.0, 0.0)
        with pytest.raises(AnalysisError):
            metrics.slowdown(-1.0, 1.0)

    def test_peak(self):
        assert metrics.peak_interference_factor([10, 20, 15], 10.0) == 2.0
        with pytest.raises(AnalysisError):
            metrics.peak_interference_factor([], 10.0)


class TestAsymmetry:
    def test_positive_when_second_app_penalized(self):
        idx = metrics.asymmetry_index([5.0, -5.0], [10.0, 10.0], [15.0, 14.0])
        assert idx > 0

    def test_zero_when_fair(self):
        assert metrics.asymmetry_index([5.0], [10.0], [10.0]) == 0.0

    def test_negative_when_first_app_penalized(self):
        assert metrics.asymmetry_index([5.0], [15.0], [10.0]) < 0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            metrics.asymmetry_index([1.0], [1.0], [1.0, 2.0])
        with pytest.raises(AnalysisError):
            metrics.asymmetry_index([], [], [])
        with pytest.raises(AnalysisError):
            metrics.asymmetry_index([1.0], [0.0], [1.0])

    def test_unfairness_ratio(self):
        assert metrics.unfairness_ratio(10.0, 15.0) == 1.5
        with pytest.raises(AnalysisError):
            metrics.unfairness_ratio(0.0, 1.0)


class TestFlatness:
    def test_flat_graph(self):
        times = [10.1, 10.2, 10.0, 10.3]
        assert metrics.flatness_index(times, 10.0) == pytest.approx(0.03)
        assert metrics.is_flat(times, 10.0)

    def test_triangular_graph_is_not_flat(self):
        times = [10.0, 15.0, 20.0, 15.0, 10.0]
        assert not metrics.is_flat(times, 10.0)
        assert metrics.flatness_index(times, 10.0) == pytest.approx(1.0)


class TestCrossover:
    def test_crossover_window(self):
        deltas = [-20, -10, 0, 10, 20]
        times = [10.0, 15.0, 20.0, 15.0, 10.0]
        neg, pos = metrics.crossover_delay(deltas, times, 10.0)
        assert neg == -10
        assert pos == 10

    def test_no_interference(self):
        assert metrics.crossover_delay([0.0], [10.0], 10.0) == (0.0, 0.0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            metrics.crossover_delay([], [], 10.0)
