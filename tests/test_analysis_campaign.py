"""Tests for the campaign runner and the EXPERIMENTS.md renderer."""

import pytest

from repro.analysis.campaign import (
    CampaignResult,
    ExperimentRecord,
    campaign_to_markdown,
    run_campaign,
    write_experiments_md,
)
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def table1_campaign():
    """A small real campaign: only Table I, at the quick setting."""
    return run_campaign(scale="tiny", quick=True, experiments=["table1"])


class TestRunCampaign:
    def test_runs_requested_experiments_only(self, table1_campaign):
        assert [r.experiment_id for r in table1_campaign.records] == ["table1"]
        assert table1_campaign.n_experiments == 1

    def test_claims_are_evaluated(self, table1_campaign):
        record = table1_campaign.record("table1")
        assert record.n_claims >= 2
        assert 0 <= record.n_agreeing <= record.n_claims

    def test_wall_times_recorded(self, table1_campaign):
        assert table1_campaign.wall_time > 0
        assert table1_campaign.record("table1").wall_time > 0

    def test_unknown_experiment_id_rejected(self):
        with pytest.raises(ExperimentError):
            run_campaign(scale="tiny", experiments=["figure99"])

    def test_progress_callback_invoked(self):
        seen = []
        run_campaign(
            scale="tiny", quick=True, experiments=["table1"],
            progress=lambda eid, record: seen.append((eid, record.n_claims)),
        )
        assert seen and seen[0][0] == "table1"

    def test_record_lookup_unknown_raises(self, table1_campaign):
        with pytest.raises(ExperimentError):
            table1_campaign.record("figure2")

    def test_summary_rows_shape(self, table1_campaign):
        rows = table1_campaign.summary_rows()
        assert len(rows) == 1
        assert rows[0]["experiment"] == "table1"
        assert "/" in rows[0]["claims agreeing"]

    def test_describe_mentions_scale_and_claims(self, table1_campaign):
        text = table1_campaign.describe()
        assert "tiny" in text
        assert "claims" in text


class TestMarkdownRendering:
    def test_markdown_contains_key_sections(self, table1_campaign):
        text = campaign_to_markdown(table1_campaign)
        assert text.startswith("# EXPERIMENTS")
        assert "## Summary" in text
        assert "## Table I" in text
        assert "Paper-reported values (Table I):" in text
        assert "Agreement with the paper:" in text
        assert "| --- |" in text  # markdown tables present

    def test_markdown_reports_measured_tables(self, table1_campaign):
        text = campaign_to_markdown(table1_campaign)
        assert "Measured — `table1`" in text
        assert "HDD" in text and "SSD" in text and "RAM" in text

    def test_write_experiments_md(self, tmp_path, table1_campaign):
        path = tmp_path / "EXPERIMENTS.md"
        text = write_experiments_md(str(path), table1_campaign)
        assert path.read_text(encoding="utf-8") == text

    def test_empty_campaign_still_renders(self):
        campaign = CampaignResult(scale="tiny")
        campaign.records = []
        with pytest.raises(Exception):
            # zero experiments means zero summary rows, which the markdown
            # table renderer rejects loudly rather than writing a bogus report
            campaign_to_markdown(campaign)


class TestExperimentRecordProperties:
    def test_title_falls_back_to_result_title(self, table1_campaign):
        record = table1_campaign.record("table1")
        assert "Table I" in record.title

    def test_counts_match_checks(self, table1_campaign):
        record = table1_campaign.record("table1")
        assert record.n_agreeing == sum(1 for c in record.checks if c.passed)
