"""Integration tests of the full I/O-path model (tiny scale)."""

import numpy as np
import pytest

from repro import units
from repro.config.presets import make_scenario, make_single_app_scenario
from repro.model.simulator import IOPathSimulator, simulate_scenario
from repro.model.state import ModelState
from repro.sim.rng import RandomStreams


class TestModelState:
    def test_connection_layout(self, tiny_scenario):
        state = ModelState(tiny_scenario, RandomStreams(0))
        n_procs = sum(a.n_processes for a in tiny_scenario.applications)
        assert state.n_processes == n_procs
        assert state.n_connections == n_procs * tiny_scenario.filesystem.n_servers
        # Every connection maps back to a valid process and server.
        assert state.conn_proc.max() < n_procs
        assert state.conn_server.max() < tiny_scenario.filesystem.n_servers
        # conn_matrix is consistent with the flat arrays.
        for conn in range(0, state.n_connections, 7):
            proc = state.conn_proc[conn]
            server = state.conn_server[conn]
            assert state.conn_matrix[proc, server] == conn

    def test_issue_operation_loads_connections(self, tiny_scenario):
        state = ModelState(tiny_scenario, RandomStreams(0))
        app = state.applications[0]
        issued = state.issue_operation(app, 0)
        assert issued == pytest.approx(app.total_bytes)
        assert state.outstanding_per_app()[0] == pytest.approx(app.total_bytes)
        assert state.outstanding_per_app()[1] == 0.0

    def test_issue_process_operation(self, tiny_scenario):
        state = ModelState(tiny_scenario, RandomStreams(0))
        app = state.applications[0]
        issued = state.issue_process_operation(int(app.proc_ids()[0]), 0)
        assert issued == pytest.approx(app.spec.pattern.bytes_per_process)


class TestEndToEnd:
    def test_single_app_completes(self, tiny_alone_result):
        result = tiny_alone_result
        app = result.app("A")
        assert app.write_time > 0
        assert app.bytes_written == pytest.approx(
            result.scenario.applications[0].total_bytes
        )
        assert result.n_steps > 10
        assert result.simulated_time >= app.end_time

    def test_contended_run_completes_both(self, tiny_contended_result):
        result = tiny_contended_result
        assert set(result.applications) == {"A", "B"}
        for app in result.applications.values():
            assert app.write_time > 0
            assert app.throughput > 0

    def test_contention_slows_applications_down(self, tiny_alone_result, tiny_contended_result):
        alone = tiny_alone_result.write_time("A")
        contended = tiny_contended_result.write_time("A")
        assert contended > 1.5 * alone

    def test_mass_conservation(self, tiny_contended_result):
        result = tiny_contended_result
        total_written = sum(a.bytes_written for a in result.applications.values())
        expected = result.scenario.total_bytes()
        assert total_written == pytest.approx(expected, rel=1e-6)

    def test_component_stats_populated(self, tiny_contended_result):
        comp = tiny_contended_result.components
        assert 0 <= comp.mean_server_utilization() <= 1
        assert 0 <= comp.mean_buffer_pressure() <= 1
        assert comp.server_utilization.shape[0] == 4
        assert comp.mean_device_utilization() > 0  # sync ON writes reach the device

    def test_summary_and_describe(self, tiny_contended_result):
        summary = tiny_contended_result.summary()
        assert "write_time.A" in summary
        assert "aggregate_throughput" in summary
        assert "A" in tiny_contended_result.describe()

    def test_determinism_same_seed(self):
        scenario = make_scenario("tiny", device="hdd", sync_mode="sync-on", delay=0.05)
        r1 = simulate_scenario(scenario, seed=5)
        r2 = simulate_scenario(scenario, seed=5)
        assert r1.write_time("A") == pytest.approx(r2.write_time("A"))
        assert r1.write_time("B") == pytest.approx(r2.write_time("B"))

    def test_negative_delay_mirrors_positive(self):
        base = make_scenario("tiny", device="hdd", sync_mode="sync-on")
        plus = simulate_scenario(base.with_delay(+0.2), seed=3)
        minus = simulate_scenario(base.with_delay(-0.2), seed=3)
        # Swapping which application starts first should (approximately) swap
        # the write times.
        assert plus.write_time("A") == pytest.approx(minus.write_time("B"), rel=0.25)
        assert plus.write_time("B") == pytest.approx(minus.write_time("A"), rel=0.25)

    def test_progress_traces_recorded(self, tiny_traced_result):
        result = tiny_traced_result
        progress = result.progress_series("A")
        assert len(progress) > 3
        assert progress.values[-1] == pytest.approx(1.0, abs=0.01)
        assert result.window_series_names()

    def test_step_size_resolution(self):
        scenario = make_scenario("tiny")
        sim = IOPathSimulator(scenario)
        assert scenario.control.min_step <= sim.step_size <= scenario.control.max_step

    def test_non_collective_mode_completes(self):
        from repro.config.workload import PatternSpec

        pattern = PatternSpec.strided(
            bytes_per_process=2 * units.MiB, request_size=512 * units.KiB, collective=False
        )
        scenario = make_scenario("tiny", pattern=pattern, device="ram", sync_mode="sync-off")
        result = simulate_scenario(scenario)
        assert result.write_time("A") > 0
        assert result.write_time("B") > 0

    def test_strided_collective_completes(self):
        scenario = make_scenario(
            "tiny", pattern="strided", request_size=512 * units.KiB,
            device="hdd", sync_mode="sync-off",
        )
        result = simulate_scenario(scenario)
        total = sum(a.bytes_written for a in result.applications.values())
        assert total == pytest.approx(scenario.total_bytes(), rel=1e-6)

    def test_partitioned_servers_reduce_interference(self):
        shared = make_scenario("tiny", device="hdd", sync_mode="sync-on")
        partitioned = make_scenario("tiny", device="hdd", sync_mode="sync-on",
                                    partition_servers=True)
        alone = simulate_scenario(make_single_app_scenario("tiny", device="hdd",
                                                           sync_mode="sync-on"))
        shared_result = simulate_scenario(shared)
        part_result = simulate_scenario(partitioned)
        # Partitioned interference factor relative to its own (half-capacity)
        # baseline should be close to 1; shared should be clearly above it.
        part_alone = simulate_scenario(
            make_single_app_scenario("tiny", device="hdd", sync_mode="sync-on",
                                     partition_servers=True)
        )
        shared_if = shared_result.write_time("A") / alone.write_time("A")
        part_if = part_result.write_time("A") / part_alone.write_time("A")
        assert part_if < shared_if
        assert part_if < 1.4
