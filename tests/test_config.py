"""Tests for the configuration dataclasses and presets."""

import dataclasses

import pytest

from repro import units
from repro.config import (
    AccessKind,
    ApplicationSpec,
    FileSystemConfig,
    NetworkConfig,
    PatternSpec,
    PlatformConfig,
    ScenarioConfig,
    ServerConfig,
    SimulationControl,
    SyncMode,
    TransportConfig,
)
from repro.config.presets import (
    PresetName,
    get_scale,
    grid5000_platform,
    make_scenario,
    make_single_app_scenario,
    paper_scale,
    reduced_scale,
    tiny_scale,
)
from repro.errors import ConfigurationError
from repro.storage import device_by_name


class TestTransportConfig:
    def test_defaults_valid(self):
        TransportConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_min": 0},
            {"window_init": 1.0, "window_min": 2.0},
            {"window_max": 1.0},
            {"mss": 0},
            {"multiplicative_decrease": 1.5},
            {"rto": 0},
            {"starvation_fraction": 1.5},
            {"established_weight": 0.5},
            {"collapse_penalty": 2.0},
            {"rwnd_overcommit": 0},
            {"incast_window_segments": 0},
            {"burst_loss_ratio": 0},
            {"source_margin": 0},
            {"max_backoff_exponent": -1},
            {"burst_escape_probability": 0},
            {"paced_timeout_hazard": 2.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TransportConfig(**kwargs)

    def test_incast_threshold(self):
        t = TransportConfig(incast_window_segments=4, mss=1500)
        assert t.incast_window_threshold == 6000

    def test_scaled_time(self):
        t = TransportConfig(rto=0.2, established_memory=0.2).scaled_time(0.5)
        assert t.rto == pytest.approx(0.1)
        assert t.established_memory == pytest.approx(0.1)
        with pytest.raises(ConfigurationError):
            TransportConfig().scaled_time(0)


class TestNetworkConfig:
    def test_defaults_and_presets(self):
        ten = NetworkConfig.ten_gig()
        one = NetworkConfig.one_gig()
        assert ten.client_nic_bw > one.client_nic_bw
        assert ten.effective_node_bw <= ten.client_nic_bw
        assert one.effective_node_bw == pytest.approx(units.gbit_per_s(1))

    def test_with_bandwidth(self):
        net = NetworkConfig().with_bandwidth(1e8, name="slow")
        assert net.client_nic_bw == 1e8
        assert net.name == "slow"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(client_nic_bw=0)
        with pytest.raises(ConfigurationError):
            NetworkConfig(rtt=0)


class TestServerAndPlatform:
    def test_server_config(self):
        cfg = ServerConfig()
        assert cfg.ops_per_second > 0
        assert cfg.with_buffer(1024).buffer_bytes == 1024
        assert cfg.with_ingest_bw(1.0).ingest_bw == 1.0
        scaled = cfg.scaled(0.5)
        assert scaled.buffer_bytes == cfg.buffer_bytes * 0.5
        with pytest.raises(ConfigurationError):
            ServerConfig(ingest_bw=0)
        with pytest.raises(ConfigurationError):
            ServerConfig(flush_bw_fraction=0)
        with pytest.raises(ConfigurationError):
            cfg.scaled(0)

    def test_platform_config(self):
        platform = PlatformConfig()
        assert platform.total_cores == platform.n_client_nodes * platform.cores_per_node
        assert platform.with_nodes(5).n_client_nodes == 5
        assert "cores" in platform.describe()
        with pytest.raises(ConfigurationError):
            PlatformConfig(n_client_nodes=0)


class TestFileSystemConfig:
    def test_defaults(self):
        fs = FileSystemConfig()
        assert fs.n_servers == 12
        assert fs.all_servers == tuple(range(12))

    def test_server_groups(self):
        fs = FileSystemConfig(n_servers=12)
        groups = fs.server_groups(2)
        assert groups == (tuple(range(6)), tuple(range(6, 12)))
        uneven = FileSystemConfig(n_servers=5).server_groups(2)
        assert uneven == ((0, 1, 2), (3, 4))
        with pytest.raises(ConfigurationError):
            fs.server_groups(0)
        with pytest.raises(ConfigurationError):
            FileSystemConfig(n_servers=2).server_groups(3)

    def test_builders(self):
        fs = FileSystemConfig()
        assert fs.with_device("ram").device.name == "RAM"
        assert fs.with_sync(False).sync_mode is SyncMode.SYNC_OFF
        assert fs.with_sync("null-aio").sync_mode is SyncMode.NULL_AIO
        assert fs.with_stripe_size(128 * units.KiB).stripe_size == 128 * units.KiB
        assert fs.with_servers(4).n_servers == 4
        with pytest.raises(ConfigurationError):
            fs.with_sync("sometimes")

    def test_sync_mode_labels(self):
        assert SyncMode.SYNC_ON.label == "Sync ON"
        assert SyncMode.NULL_AIO.label == "Null-aio"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FileSystemConfig(n_servers=0)
        with pytest.raises(ConfigurationError):
            FileSystemConfig(stripe_size=0)


class TestPatternSpec:
    def test_contiguous_defaults(self):
        pattern = PatternSpec.contiguous(bytes_per_process=64 * units.MiB)
        assert pattern.kind is AccessKind.CONTIGUOUS
        assert pattern.requests_per_process == 1
        assert pattern.effective_request_size == 64 * units.MiB

    def test_strided_defaults_match_paper(self):
        pattern = PatternSpec.strided(bytes_per_process=64 * units.MiB)
        assert pattern.requests_per_process == 256
        assert pattern.effective_request_size == 256 * units.KiB

    def test_last_request_size(self):
        pattern = PatternSpec.strided(bytes_per_process=100 * units.KiB,
                                      request_size=64 * units.KiB)
        assert pattern.requests_per_process == 2
        assert pattern.last_request_size == pytest.approx(36 * units.KiB)

    def test_with_request_size(self):
        pattern = PatternSpec.strided().with_request_size(128 * units.KiB)
        assert pattern.effective_request_size == 128 * units.KiB

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PatternSpec(bytes_per_process=0)
        with pytest.raises(ConfigurationError):
            PatternSpec(bytes_per_process=10, request_size=20)
        with pytest.raises(ConfigurationError):
            PatternSpec(collective_overhead=-1)

    def test_describe(self):
        assert "contiguous" in PatternSpec.contiguous().describe()
        assert "strided" in PatternSpec.strided().describe()


class TestApplicationSpec:
    def make(self, **kwargs):
        defaults = dict(name="A", n_nodes=4, procs_per_node=8,
                        pattern=PatternSpec.contiguous(8 * units.MiB))
        defaults.update(kwargs)
        return ApplicationSpec(**defaults)

    def test_derived_quantities(self):
        app = self.make()
        assert app.n_processes == 32
        assert app.total_bytes == 32 * 8 * units.MiB

    def test_with_writers_conserves_volume(self):
        app = self.make()
        aggregated = app.with_writers(4, 1)
        assert aggregated.n_processes == 4
        assert aggregated.total_bytes == pytest.approx(app.total_bytes)
        not_conserved = app.with_writers(4, 1, keep_total_bytes=False)
        assert not_conserved.total_bytes < app.total_bytes

    def test_with_helpers(self):
        app = self.make()
        assert app.with_start_time(3.0).start_time == 3.0
        assert app.with_target_servers([0, 1]).target_servers == (0, 1)
        assert app.with_target_servers(None).target_servers is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.make(name="")
        with pytest.raises(ConfigurationError):
            self.make(n_nodes=0)
        with pytest.raises(ConfigurationError):
            self.make(target_servers=(0, 0))
        with pytest.raises(ConfigurationError):
            self.make(target_servers=())


class TestScenarioConfig:
    def test_make_scenario_valid(self):
        scenario = make_scenario("tiny")
        assert scenario.n_applications == 2
        assert scenario.node_ranges() == ((0, 4), (4, 8))
        assert scenario.total_bytes() > 0
        assert scenario.estimate_duration() > 0
        assert "scenario" in scenario.describe()

    def test_with_delay(self):
        scenario = make_scenario("tiny").with_delay(2.5)
        assert scenario.applications[1].start_time == 2.5
        assert scenario.applications[0].start_time == 0.0

    def test_application_lookup(self):
        scenario = make_scenario("tiny")
        assert scenario.application("A").name == "A"
        with pytest.raises(KeyError):
            scenario.application("Z")

    def test_app_servers_default_and_partitioned(self):
        scenario = make_scenario("tiny")
        assert scenario.app_servers(scenario.applications[0]) == scenario.filesystem.all_servers
        part = make_scenario("tiny", partition_servers=True)
        servers_a = part.app_servers(part.applications[0])
        servers_b = part.app_servers(part.applications[1])
        assert set(servers_a).isdisjoint(servers_b)

    def test_too_many_nodes_rejected(self):
        scenario = make_scenario("tiny")
        big_app = scenario.applications[0].with_writers(100, 1)
        with pytest.raises(ConfigurationError):
            scenario.with_applications([big_app, scenario.applications[1]])

    def test_invalid_target_server(self):
        scenario = make_scenario("tiny")
        bad = scenario.applications[0].with_target_servers([99])
        with pytest.raises(ConfigurationError):
            scenario.with_applications([bad, scenario.applications[1]])

    def test_duplicate_names_rejected(self):
        scenario = make_scenario("tiny")
        with pytest.raises(ConfigurationError):
            scenario.with_applications([scenario.applications[0]] * 2)

    def test_simulation_control(self):
        control = SimulationControl()
        assert control.resolve_step(100.0) <= control.max_step
        assert control.resolve_step(0.001) == control.min_step
        assert SimulationControl(step=0.01).resolve_step(1e9) == 0.01
        with pytest.raises(ConfigurationError):
            SimulationControl(step=0)
        with pytest.raises(ConfigurationError):
            SimulationControl(min_step=1.0, max_step=0.1)


class TestPresets:
    def test_scales(self):
        for name, factory in [("paper", paper_scale), ("reduced", reduced_scale), ("tiny", tiny_scale)]:
            preset = factory()
            assert preset.name == name
            assert preset.procs_per_app == preset.nodes_per_app * preset.procs_per_node
        assert paper_scale().total_clients == 960

    def test_get_scale(self):
        assert get_scale("paper").name == "paper"
        assert get_scale(PresetName.TINY).name == "tiny"
        assert get_scale(reduced_scale()).name == "reduced"
        with pytest.raises(ConfigurationError):
            get_scale("huge")

    def test_grid5000_platform_networks(self):
        ten = grid5000_platform("tiny", network="10g")
        one = grid5000_platform("tiny", network="1g")
        assert ten.network.client_nic_bw > one.network.client_nic_bw
        with pytest.raises(ConfigurationError):
            grid5000_platform("tiny", network="wifi")

    def test_make_scenario_options(self):
        scenario = make_scenario(
            "tiny",
            device="ram",
            sync_mode="sync-off",
            pattern="strided",
            request_size=64 * units.KiB,
            stripe_size=128 * units.KiB,
            n_servers=2,
            procs_per_node=2,
            delay=1.5,
        )
        assert scenario.filesystem.device.name == "RAM"
        assert scenario.filesystem.sync_mode is SyncMode.SYNC_OFF
        assert scenario.filesystem.n_servers == 2
        assert scenario.applications[1].start_time == 1.5
        assert scenario.applications[0].pattern.kind is AccessKind.STRIDED

    def test_null_aio_forces_null_device(self):
        scenario = make_scenario("tiny", device="hdd", sync_mode="null-aio")
        assert scenario.filesystem.device.is_unlimited

    def test_single_app_scenario(self):
        scenario = make_single_app_scenario("tiny")
        assert scenario.n_applications == 1

    def test_pattern_spec_passthrough(self):
        pattern = PatternSpec.strided(bytes_per_process=1 * units.MiB)
        scenario = make_scenario("tiny", pattern=pattern)
        assert scenario.applications[0].pattern == pattern

    def test_scenario_configs_are_frozen(self):
        scenario = make_scenario("tiny")
        with pytest.raises(dataclasses.FrozenInstanceError):
            scenario.label = "nope"  # type: ignore[misc]
        with pytest.raises(dataclasses.FrozenInstanceError):
            scenario.filesystem.stripe_size = 1  # type: ignore[misc]

    def test_device_by_name_integration(self):
        scenario = make_scenario("tiny", device=device_by_name("ssd"))
        assert scenario.filesystem.device.name == "SSD"
