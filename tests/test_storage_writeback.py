"""Tests for the write-back cache and device queue."""

import pytest

from repro import units
from repro.errors import ConfigurationError, SimulationError
from repro.storage.hdd import hdd_7200rpm
from repro.storage.queueing import DeviceQueue
from repro.storage.ram import ram_disk
from repro.storage.writeback import WritebackCache


def make_cache(capacity=10 * units.MiB, memory_bw=100 * units.MiB):
    return WritebackCache(
        capacity_bytes=capacity, memory_bw=memory_bw, device=hdd_7200rpm(), flush_bw_fraction=0.5
    )


class TestWritebackCache:
    def test_absorbs_at_memory_speed_when_empty(self):
        cache = make_cache()
        assert cache.absorb_rate() == 100 * units.MiB
        accepted = cache.absorb(1 * units.MiB, dt=0.1)
        assert accepted == pytest.approx(1 * units.MiB)
        assert cache.dirty_bytes == pytest.approx(1 * units.MiB)

    def test_absorb_limited_by_rate(self):
        cache = make_cache()
        accepted = cache.absorb(100 * units.MiB, dt=0.01)
        assert accepted == pytest.approx(1 * units.MiB)

    def test_full_cache_degrades_to_flush_rate(self):
        cache = make_cache(capacity=1 * units.MiB)
        cache.absorb(1 * units.MiB, dt=1.0)
        assert cache.is_full
        assert cache.absorb_rate() < cache.memory_bw

    def test_flush_reduces_dirty(self):
        cache = make_cache()
        cache.absorb(5 * units.MiB, dt=1.0)
        flushed = cache.flush(dt=0.1)
        assert flushed > 0
        assert cache.dirty_bytes < 5 * units.MiB
        assert cache.total_flushed == pytest.approx(flushed)

    def test_drain_remaining_time(self):
        cache = make_cache()
        assert cache.drain_remaining_time() == 0.0
        cache.absorb(5 * units.MiB, dt=1.0)
        assert cache.drain_remaining_time() > 0.0

    def test_reset(self):
        cache = make_cache()
        cache.absorb(2 * units.MiB, dt=1.0)
        cache.reset()
        assert cache.dirty_bytes == 0.0
        assert cache.total_absorbed == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WritebackCache(capacity_bytes=-1, memory_bw=1.0, device=ram_disk())
        with pytest.raises(ConfigurationError):
            WritebackCache(capacity_bytes=1.0, memory_bw=0.0, device=ram_disk())
        cache = make_cache()
        with pytest.raises(SimulationError):
            cache.absorb(-1.0, dt=1.0)
        with pytest.raises(SimulationError):
            cache.flush(dt=0.0)


class TestDeviceQueue:
    def test_enqueue_and_drain(self):
        queue = DeviceQueue(device=hdd_7200rpm())
        queue.enqueue(10 * units.MiB)
        written = queue.drain(dt=0.05, n_streams=1, granularity=4 * units.MiB)
        assert written > 0
        assert queue.pending_bytes == pytest.approx(10 * units.MiB - written)
        assert 0.0 < queue.utilization() <= 1.0

    def test_idle_device_has_zero_utilization(self):
        queue = DeviceQueue(device=hdd_7200rpm())
        queue.drain(dt=1.0)
        assert queue.utilization() == 0.0

    def test_null_device_drains_everything(self):
        from repro.storage.nullaio import null_aio

        queue = DeviceQueue(device=null_aio())
        queue.enqueue(units.GiB)
        written = queue.drain(dt=0.001)
        assert written == units.GiB
        assert queue.pending_bytes == 0.0

    def test_validation_and_reset(self):
        queue = DeviceQueue(device=hdd_7200rpm())
        with pytest.raises(SimulationError):
            queue.enqueue(-1)
        with pytest.raises(SimulationError):
            queue.drain(dt=0.0)
        queue.enqueue(units.MiB)
        queue.drain(dt=0.01)
        queue.reset()
        assert queue.pending_bytes == 0.0
        assert queue.observed_time == 0.0
