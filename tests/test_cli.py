"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_run(self):
        args = build_parser().parse_args(["run", "table1", "--scale", "tiny", "--quick"])
        assert args.experiment == "table1"
        assert args.scale == "tiny"
        assert args.quick

    def test_parses_sweep(self):
        args = build_parser().parse_args(
            ["sweep", "--device", "ram", "--sync", "sync-off", "--points", "3"]
        )
        assert args.device == "ram"
        assert args.points == 3

    def test_parses_stepping_flags(self):
        for command in ("sweep", "campaign"):
            args = build_parser().parse_args(
                [command, "--stepping", "adaptive", "--step-tolerance", "0.1"]
            )
            assert args.stepping == "adaptive"
            assert args.step_tolerance == 0.1
            assert build_parser().parse_args([command]).stepping == "fixed"

    def test_rejects_unknown_stepping_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--stepping", "sometimes"])

    def test_rejects_out_of_range_tolerance(self):
        for bad in ("0", "-0.5", "1.5", "nan"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    ["sweep", "--stepping", "adaptive", "--step-tolerance", bad]
                )

    def test_rejects_tolerance_without_adaptive(self, capsys):
        for argv in (
            ["sweep", "--scale", "tiny", "--points", "3", "--step-tolerance", "0.1"],
            ["campaign", "--scale", "tiny", "--quick", "--step-tolerance", "0.1"],
            ["sweep", "--scale", "tiny", "--points", "3", "--stepping", "fixed",
             "--step-tolerance", "0.1"],
        ):
            with pytest.raises(SystemExit):
                main(argv)
            assert "--stepping adaptive" in capsys.readouterr().err


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "figure12" in out

    def test_run_table1_quick(self, capsys):
        assert main(["run", "table1", "--scale", "tiny", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out

    def test_run_csv_export(self, capsys):
        assert main(["run", "table1", "--scale", "tiny", "--quick", "--csv", "table1"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("device,")

    def test_sweep_tiny(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--scale",
                    "tiny",
                    "--device",
                    "ram",
                    "--sync",
                    "sync-off",
                    "--points",
                    "3",
                    "--plot",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "peak interference factor" in out
        assert "write time" in out

    def test_sweep_csv(self, capsys):
        assert (
            main(["sweep", "--scale", "tiny", "--device", "ram", "--sync", "sync-off",
                  "--points", "3", "--csv"]) == 0
        )
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("delta")

    def test_sweep_adaptive_stepping(self, capsys):
        assert (
            main(["sweep", "--scale", "tiny", "--device", "ram", "--sync", "sync-off",
                  "--points", "3", "--stepping", "adaptive",
                  "--step-tolerance", "0.05", "--csv"]) == 0
        )
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("delta")


class TestExplainBuckets:
    def test_prints_the_bucket_plan(self, capsys):
        assert main([
            "perf", "--explain-buckets", "--scale", "tiny",
            "--archetypes", "checkpoint,analytics",
        ]) == 0
        out = capsys.readouterr().out
        assert "bucket plan: 5 tasks over checkpoint+analytics" in out
        assert "0 scalar fallbacks" in out
        assert "group_widths=" in out
        assert "alone:checkpoint" in out

    def test_padded_buckets_are_labelled(self, capsys):
        # smallfile (w32) and analytics (w8) share a cadence: mixed widths
        # pad into one bucket rather than falling back.
        assert main([
            "perf", "--explain-buckets", "--scale", "tiny",
            "--archetypes", "analytics,smallfile,incast",
        ]) == 0
        out = capsys.readouterr().out
        assert "(padded)" in out

    def test_rejects_unknown_archetypes(self):
        with pytest.raises(SystemExit) as err:
            main(["perf", "--explain-buckets", "--archetypes", "nope,nah"])
        assert err.value.code == 2


class TestCacheMigrateCli:
    def test_migrates_flat_entries_and_reports(self, tmp_path, capsys):
        import shutil

        from repro.runner.cache import ResultCache, fingerprint

        fp = fingerprint("table1", "tiny", False)
        donor = ResultCache(str(tmp_path / "donor"))
        stored = donor.put(fp, {"v": 1})
        legacy = tmp_path / "legacy"
        (legacy / "objects").mkdir(parents=True)
        shutil.copy(stored, legacy / "objects" / f"{fp}.json")
        (legacy / "objects" / "dead.tmp").write_text("x", encoding="utf-8")

        assert main(["cache", "migrate", "--cache-dir", str(legacy)]) == 0
        err = capsys.readouterr().err
        assert "event=cache_migrated" in err
        assert "moved=1" in err
        assert "swept_tmp=1" in err
        assert ResultCache(str(legacy)).get(fp) == {"v": 1}

    def test_idempotent_second_run(self, tmp_path, capsys):
        assert main(["cache", "migrate", "--cache-dir", str(tmp_path)]) == 0
        assert main(["cache", "migrate", "--cache-dir", str(tmp_path)]) == 0
        assert "moved=0" in capsys.readouterr().err
