"""Tests for the run-result containers (repro.model.results)."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.model.results import (
    ApplicationResult,
    ComponentStats,
    RunResult,
    merge_extra,
)
from repro.sim.tracing import TraceRecorder


def make_run(tiny_scenario, apps=None):
    apps = apps or {
        "A": ApplicationResult("A", 0.0, 10.0, 1e9, 5),
        "B": ApplicationResult("B", 2.0, 14.0, 1e9, 50),
    }
    components = ComponentStats(
        client_nic_utilization=0.3,
        server_nic_utilization=0.4,
        server_utilization=np.array([0.5, 0.7]),
        device_utilization=np.array([0.8, 0.6]),
        buffer_pressure=np.array([0.9, 0.1]),
        total_window_collapses=55,
    )
    return RunResult(
        scenario=tiny_scenario,
        applications=apps,
        components=components,
        recorder=TraceRecorder(),
        simulated_time=14.0,
        n_steps=1000,
        wall_time=0.5,
        label="synthetic",
    )


class TestApplicationResult:
    def test_write_time_and_throughput(self):
        app = ApplicationResult("A", start_time=1.0, end_time=5.0,
                                bytes_written=8.0, window_collapses=0)
        assert app.write_time == pytest.approx(4.0)
        assert app.throughput == pytest.approx(2.0)

    def test_zero_duration_throughput_is_infinite(self):
        app = ApplicationResult("A", 1.0, 1.0, 8.0, 0)
        assert app.throughput == float("inf")


class TestComponentStats:
    def test_means(self, tiny_scenario):
        run = make_run(tiny_scenario)
        assert run.components.mean_server_utilization() == pytest.approx(0.6)
        assert run.components.mean_device_utilization() == pytest.approx(0.7)
        assert run.components.mean_buffer_pressure() == pytest.approx(0.5)

    def test_empty_arrays_mean_zero(self):
        stats = ComponentStats(0.0, 0.0, np.zeros(0), np.zeros(0), np.zeros(0), 0)
        assert stats.mean_server_utilization() == 0.0
        assert stats.mean_device_utilization() == 0.0
        assert stats.mean_buffer_pressure() == 0.0


class TestRunResult:
    def test_accessors(self, tiny_scenario):
        run = make_run(tiny_scenario)
        assert run.write_time("A") == pytest.approx(10.0)
        assert run.write_time("B") == pytest.approx(12.0)
        assert run.throughput("A") == pytest.approx(1e8)
        assert run.total_window_collapses() == 55

    def test_unknown_application_raises_with_alternatives(self, tiny_scenario):
        run = make_run(tiny_scenario)
        with pytest.raises(AnalysisError) as excinfo:
            run.app("C")
        assert "A" in str(excinfo.value) and "B" in str(excinfo.value)

    def test_aggregate_throughput_uses_the_overall_span(self, tiny_scenario):
        run = make_run(tiny_scenario)
        assert run.aggregate_throughput() == pytest.approx(2e9 / 14.0)

    def test_aggregate_throughput_empty(self, tiny_scenario):
        run = make_run(tiny_scenario)
        run.applications = {}
        assert run.aggregate_throughput() == 0.0

    def test_summary_keys_and_values(self, tiny_scenario):
        summary = make_run(tiny_scenario).summary()
        assert summary["write_time.A"] == pytest.approx(10.0)
        assert summary["collapses.B"] == pytest.approx(50.0)
        assert summary["window_collapses"] == pytest.approx(55.0)
        assert summary["mean_buffer_pressure"] == pytest.approx(0.5)

    def test_describe_mentions_every_application(self, tiny_scenario):
        text = make_run(tiny_scenario).describe()
        assert "app A" in text and "app B" in text
        assert "window collapses" in text

    def test_merge_extra_adds_metadata(self, tiny_scenario):
        run = make_run(tiny_scenario)
        merge_extra(run, custom_metric=3.5)
        assert run.summary()["custom_metric"] == pytest.approx(3.5)
