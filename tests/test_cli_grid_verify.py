"""Tests for the ``repro-io grid`` and ``repro-io verify`` commands, plus the
``--version`` flag and the new campaign options."""

import pytest

from repro._version import __version__
from repro.cli import build_parser, main


class TestVersionFlag:
    def test_version_prints_and_exits(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestSweepPointsValidation:
    def test_rejects_one_point(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--points", "1"])

    def test_rejects_non_integer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--points", "many"])

    def test_accepts_three(self):
        args = build_parser().parse_args(["sweep", "--points", "3"])
        assert args.points == 3


class TestCampaignParserOptions:
    def test_new_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert args.resume is False
        assert args.timing is False

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--jobs", "0"])

    def test_options_parse(self):
        args = build_parser().parse_args(
            ["campaign", "--jobs", "4", "--cache-dir", "c", "--resume", "--timing"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "c"
        assert args.resume and args.timing


class TestCampaignCacheCli:
    def test_repeat_run_reports_cached(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["campaign", "--scale", "tiny", "--quick", "--only", "table1",
                "--cache-dir", cache]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "origin=cached" not in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "origin=cached" in second.err
        assert second.out == first.out  # byte-identical report

    def test_resume_defaults_cache_dir(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        argv = ["campaign", "--scale", "tiny", "--quick", "--only", "table1",
                "--resume"]
        assert main(argv) == 0
        capsys.readouterr()
        assert (tmp_path / ".repro-cache").is_dir()
        assert main(argv) == 0
        assert "origin=cached" in capsys.readouterr().err


class TestGridCli:
    def test_grid_runs_and_persists(self, tmp_path, capsys):
        store = str(tmp_path / "runs")
        rc = main([
            "grid", "--axis", "device=hdd,ram", "--axis", "sync=sync-on,sync-off",
            "--scale", "tiny", "--points", "3", "--jobs", "2", "--store", store,
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "| device |" in captured.out
        assert "event=grid_persisted runs=4" in captured.err
        # every persisted run verifies
        assert main(["verify", store]) == 0
        assert "4/4 runs verified" in capsys.readouterr().out

    def test_grid_csv_output(self, capsys):
        rc = main(["grid", "--axis", "device=ram", "--scale", "tiny",
                   "--points", "3", "--no-store", "--csv"])
        captured = capsys.readouterr()
        assert rc == 0
        assert captured.out.startswith("device,")

    def test_grid_rejects_bad_axis(self):
        with pytest.raises(Exception):
            main(["grid", "--axis", "warp=9", "--scale", "tiny", "--no-store"])


class TestVerifyCli:
    def test_verify_fails_on_tampered_run(self, tmp_path, capsys):
        store = str(tmp_path / "runs")
        main(["grid", "--axis", "device=ram", "--scale", "tiny", "--points", "3",
              "--store", store])
        capsys.readouterr()
        sweep_file = next((tmp_path / "runs").glob("*/sweep.json"))
        sweep_file.write_text("{}", encoding="utf-8")
        assert main(["verify", store]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "checksum mismatch" in out

    def test_verify_missing_path_fails(self, tmp_path, capsys):
        assert main(["verify", str(tmp_path / "nope")]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_verify_single_run_dir(self, tmp_path, capsys):
        store = str(tmp_path / "runs")
        main(["grid", "--axis", "device=ram", "--scale", "tiny", "--points", "3",
              "--store", store])
        capsys.readouterr()
        run_dir = next(p for p in (tmp_path / "runs").iterdir() if p.is_dir())
        assert main(["verify", str(run_dir)]) == 0
        assert "1/1 runs verified" in capsys.readouterr().out
