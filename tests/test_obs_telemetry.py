"""Unit tests for the telemetry registry (counters, spans, worker merge)."""

import json

import pytest

from repro.obs.telemetry import (
    NULL,
    SPAN_CATEGORIES,
    TELEMETRY_SCHEMA_ID,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)


class TestScalars:
    def test_counter_accumulates(self):
        t = Telemetry()
        t.count("cache.hit")
        t.count("cache.hit", 2)
        assert t.counter("cache.hit") == 3

    def test_unwritten_counter_is_zero(self):
        assert Telemetry().counter("nope") == 0

    def test_gauge_last_write_wins(self):
        t = Telemetry()
        t.gauge("executor.jobs", 2)
        t.gauge("executor.jobs", 8)
        assert t.to_document()["gauges"]["executor.jobs"] == 8.0

    def test_histogram_aggregates(self):
        t = Telemetry()
        for value in (3.0, 1.0, 2.0):
            t.observe("sim.wall_s", value)
        hist = t.to_document()["histograms"]["sim.wall_s"]
        assert hist == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0}


class TestSpans:
    def test_context_manager_nesting_sets_parents(self):
        t = Telemetry()
        with t.span("outer", category="campaign") as outer_id:
            with t.span("inner", category="task") as inner_id:
                assert t.current_span_id() == inner_id
            assert t.current_span_id() == outer_id
        assert t.current_span_id() is None
        outer, inner = t.to_document()["spans"]
        assert outer["parent"] is None
        assert inner["parent"] == outer["id"]
        assert inner["dur_us"] <= outer["dur_us"]

    def test_add_span_defaults_to_open_parent(self):
        t = Telemetry()
        with t.span("outer", category="simulation") as outer_id:
            t.add_span("phase", "phase", 0.0, 5.0)
        span = t.to_document()["spans"][-1]
        assert span["parent"] == outer_id
        assert span["dur_us"] == 5.0

    def test_add_span_explicit_parent_and_args(self):
        t = Telemetry()
        sid = t.add_span("task", "task", 1.0, 2.0, args={"kind": "x"})
        child = t.add_span("sub", "simulation", 1.0, 1.0, parent=sid)
        spans = t.to_document()["spans"]
        assert spans[0]["args"] == {"kind": "x"}
        assert spans[1]["parent"] == sid
        assert child != sid

    def test_negative_duration_clamped(self):
        t = Telemetry()
        t.add_span("x", "task", 0.0, -1.0)
        assert t.to_document()["spans"][0]["dur_us"] == 0.0

    def test_span_ids_unique_and_increasing(self):
        t = Telemetry()
        ids = [t.add_span(f"s{i}", "task", 0.0, 1.0) for i in range(5)]
        assert ids == sorted(set(ids))

    def test_categories_cover_the_hierarchy(self):
        assert SPAN_CATEGORIES == (
            "campaign", "task", "bucket", "simulation", "phase"
        )


class TestEvents:
    def test_events_jsonl_round_trips(self):
        t = Telemetry()
        t.event("cache_store", fingerprint="abc", bytes=17)
        t.event("done")
        lines = t.events_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "cache_store"
        assert first["fingerprint"] == "abc"
        assert "ts_us" in first

    def test_no_events_is_empty_payload(self):
        assert Telemetry().events_jsonl() == ""

    def test_document_counts_events(self):
        t = Telemetry()
        t.event("a")
        assert t.to_document()["n_events"] == 1


class TestDocument:
    def test_schema_id_and_label(self):
        t = Telemetry(label="matrix")
        doc = t.to_document(run_id="matrix_abc")
        assert doc["schema"] == TELEMETRY_SCHEMA_ID
        assert doc["label"] == "matrix"
        assert doc["run_id"] == "matrix_abc"

    def test_duration_covers_latest_span(self):
        t = Telemetry()
        t.add_span("late", "task", 1e9, 5e6)
        assert t.to_document()["duration_us"] >= 1e9 + 5e6

    def test_meta_included_when_given(self):
        doc = Telemetry().to_document(meta={"scale": "tiny"})
        assert doc["meta"] == {"scale": "tiny"}


class TestSnapshotMerge:
    def _worker_snapshot(self):
        worker = Telemetry(label="worker")
        worker.count("sim.steps", 10)
        worker.gauge("g", 1.0)
        worker.observe("h", 2.0)
        with worker.span("simulate", category="simulation"):
            worker.add_span("drain", "phase", 0.0, 1.0)
        return worker, worker.snapshot()

    def test_counters_add_and_histograms_merge(self):
        parent = Telemetry()
        parent.count("sim.steps", 5)
        parent.observe("h", 10.0)
        _, snap = self._worker_snapshot()
        parent.merge_snapshot(snap)
        doc = parent.to_document()
        assert doc["counters"]["sim.steps"] == 15
        assert doc["histograms"]["h"]["count"] == 2
        assert doc["histograms"]["h"]["max"] == 10.0

    def test_spans_remap_ids_and_attach_under_parent(self):
        parent = Telemetry()
        anchor = parent.add_span("task", "task", 0.0, 100.0)
        _, snap = self._worker_snapshot()
        parent.merge_snapshot(snap, parent=anchor, track="workers")
        spans = parent.to_document()["spans"]
        merged = [s for s in spans if s["track"] == "workers"]
        assert len(merged) == 2
        root = next(s for s in merged if s["name"] == "simulate")
        child = next(s for s in merged if s["name"] == "drain")
        assert root["parent"] == anchor
        assert child["parent"] == root["id"]
        ids = [s["id"] for s in spans]
        assert len(ids) == len(set(ids))

    def test_epoch_offset_reanchors_times(self):
        parent = Telemetry()
        worker, snap = self._worker_snapshot()
        snap["epoch"] = parent.epoch + 2.0  # worker started 2s later
        parent.merge_snapshot(snap)
        root = parent.to_document()["spans"][0]
        assert root["start_us"] >= 2e6


class TestNullAndSession:
    def test_null_is_disabled_and_inert(self):
        assert NULL.enabled is False
        NULL.count("x")
        NULL.gauge("x", 1)
        NULL.observe("x", 1)
        NULL.event("x")
        with NULL.span("x"):
            pass
        assert NULL.counter("x") == 0
        assert NULL.add_span("x", "task", 0, 0) == 0
        assert NULL.snapshot() == {}

    def test_default_registry_is_null(self):
        assert get_telemetry() is NULL

    def test_session_installs_and_restores(self):
        assert get_telemetry() is NULL
        with telemetry_session("test") as session:
            assert get_telemetry() is session
            assert session.enabled
            with telemetry_session("inner") as inner:
                assert get_telemetry() is inner
            assert get_telemetry() is session
        assert get_telemetry() is NULL

    def test_set_telemetry_none_restores_null(self):
        t = Telemetry()
        set_telemetry(t)
        try:
            assert get_telemetry() is t
        finally:
            set_telemetry(None)
        assert get_telemetry() is NULL

    def test_session_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with telemetry_session():
                raise RuntimeError("boom")
        assert get_telemetry() is NULL
