"""Shared fixtures.

Simulation runs are comparatively expensive, so the fixtures that run the
tiny-scale scenarios are session-scoped and reused by every test that only
needs to *read* results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config.presets import make_scenario, make_single_app_scenario
from repro.model.simulator import simulate_scenario
from repro.sim.rng import RandomStreams
from repro.sim.tracing import TraceConfig


@pytest.fixture(scope="session")
def tiny_scenario():
    """A tiny two-application scenario (HDD, sync ON, contiguous, dt=0)."""
    return make_scenario("tiny", device="hdd", sync_mode="sync-on", delay=0.0)


@pytest.fixture(scope="session")
def tiny_alone_result():
    """Interference-free tiny run (application A only)."""
    scenario = make_single_app_scenario("tiny", device="hdd", sync_mode="sync-on")
    return simulate_scenario(scenario)


@pytest.fixture(scope="session")
def tiny_contended_result(tiny_scenario):
    """Contended tiny run (both applications, dt=0)."""
    return simulate_scenario(tiny_scenario)


@pytest.fixture(scope="session")
def tiny_traced_result():
    """Tiny contended run with window/progress tracing enabled."""
    trace = TraceConfig(
        series_sample_period=0.02,
        record_windows=True,
        record_progress=True,
        record_server_state=True,
        window_connection_limit=2,
    )
    scenario = make_scenario(
        "tiny", device="hdd", sync_mode="sync-on", delay=0.1, trace=trace
    )
    return simulate_scenario(scenario)


@pytest.fixture()
def rng():
    """A deterministic NumPy generator for unit tests."""
    return np.random.default_rng(12345)


@pytest.fixture()
def streams():
    """A deterministic RandomStreams factory."""
    return RandomStreams(777)
