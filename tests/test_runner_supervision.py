"""Tests for the supervised executor: retries, timeouts, quarantine, journal."""

import json

import pytest

from repro.errors import ExperimentError, TaskTimeout
from repro.obs.telemetry import telemetry_session
from repro.runner.chaos import ChaosError, FaultPlan, FaultSpec, fault_plan
from repro.runner.executor import (
    FaultPolicy,
    ParallelExecutor,
    TaskFailure,
    TaskSpec,
)
from repro.runner.journal import JOURNAL_NAME, ProgressJournal


def probe(task_id, value=0, sleep_s=0.0):
    return TaskSpec(
        task_id=task_id, kind="probe",
        payload={"value": value, "sleep_s": sleep_s}, seed=1,
    )


class TestFaultPolicy:
    def test_rejects_bad_values(self):
        with pytest.raises(ExperimentError):
            FaultPolicy(task_timeout_s=0.0)
        with pytest.raises(ExperimentError):
            FaultPolicy(max_retries=-1)
        with pytest.raises(ExperimentError):
            FaultPolicy(backoff_base_s=-0.1)

    def test_timeout_for_prefers_kind_override(self):
        policy = FaultPolicy(
            task_timeout_s=10.0, timeouts_by_kind={"probe": 2.0}
        )
        assert policy.timeout_for("probe") == 2.0
        assert policy.timeout_for("experiment") == 10.0

    def test_backoff_is_deterministic_capped_and_growing(self):
        policy = FaultPolicy(backoff_base_s=0.1, backoff_cap_s=0.4)
        first = policy.backoff_s("t1", 1)
        assert first == policy.backoff_s("t1", 1)
        # Jitter keeps each wait within [0.5, 1.0) of the nominal value.
        assert 0.05 <= first < 0.1
        assert 0.2 <= policy.backoff_s("t1", 3) < 0.4  # capped at 0.4
        assert policy.backoff_s("t1", 2) != policy.backoff_s("t2", 2)


class TestTaskFailure:
    def test_to_dict_shape(self):
        failure = TaskFailure(
            task_id="t", kind="probe", reason="timeout", error="boom",
            attempts=3,
        )
        assert failure.to_dict() == {
            "task_id": "t", "kind": "probe", "reason": "timeout",
            "error": "boom", "attempts": 3,
        }


class TestSupervisedSerial:
    def test_clean_run_matches_unsupervised(self):
        tasks = [probe(f"t{i}", value=i) for i in range(4)]
        plain = ParallelExecutor(jobs=1).map(tasks)
        supervised = ParallelExecutor(
            jobs=1, fault_policy=FaultPolicy(max_retries=2)
        ).map(tasks)
        assert supervised == plain

    def test_transient_fault_is_retried_to_success(self):
        policy = FaultPolicy(max_retries=2, backoff_base_s=0.001,
                             backoff_cap_s=0.002)
        plan = FaultPlan.of(FaultSpec(match="t1", times=1))
        with fault_plan(plan):
            results = ParallelExecutor(jobs=1, fault_policy=policy).map(
                [probe("t0", value=0), probe("t1", value=1)]
            )
        assert [r["value"] for r in results] == [0, 1]

    def test_poisoned_task_is_quarantined_into_failures(self):
        policy = FaultPolicy(max_retries=1, backoff_base_s=0.001,
                             backoff_cap_s=0.002)
        plan = FaultPlan.of(FaultSpec(match="t1", times=99))
        failures = {}
        with fault_plan(plan):
            results = ParallelExecutor(jobs=1, fault_policy=policy).map(
                [probe("t0", value=0), probe("t1", value=1),
                 probe("t2", value=2)],
                failures=failures,
            )
        assert results[0]["value"] == 0
        assert results[1] is None
        assert results[2]["value"] == 2
        assert set(failures) == {"t1"}
        assert failures["t1"]["reason"] == "exception"
        assert failures["t1"]["attempts"] == 2  # initial + one retry

    def test_quarantine_without_failures_sink_raises(self):
        policy = FaultPolicy(max_retries=0)
        plan = FaultPlan.of(FaultSpec(match="t0", times=99))
        with fault_plan(plan):
            with pytest.raises(ExperimentError, match="exhausted their retries"):
                ParallelExecutor(jobs=1, fault_policy=policy).map(
                    [probe("t0")]
                )

    def test_stall_past_deadline_times_out_then_retry_succeeds(self):
        policy = FaultPolicy(task_timeout_s=0.2, max_retries=1,
                             backoff_base_s=0.001, backoff_cap_s=0.002)
        plan = FaultPlan.of(
            FaultSpec(match="t0", mode="stall", delay_s=5.0, times=1)
        )
        with fault_plan(plan):
            results = ParallelExecutor(jobs=1, fault_policy=policy).map(
                [probe("t0", value=7)]
            )
        assert results[0]["value"] == 7

    def test_counters(self):
        policy = FaultPolicy(max_retries=1, backoff_base_s=0.001,
                             backoff_cap_s=0.002)
        plan = FaultPlan.of(FaultSpec(match="bad", times=99))
        failures = {}
        with telemetry_session("supervision") as telemetry:
            with fault_plan(plan):
                ParallelExecutor(jobs=1, fault_policy=policy).map(
                    [probe("ok"), probe("bad")], failures=failures
                )
            counters = telemetry.snapshot()["counters"]
        assert counters["executor.retries"] == 1
        assert counters["executor.quarantined"] == 1


class TestSupervisedPool:
    def test_crash_stall_and_poison_recovery(self):
        """The full chaos gauntlet under a real process pool.

        One worker crash (pool rebuild), one stall past the deadline
        (worker-side timeout), one poisoned task (quarantine) — the map
        completes, innocents are unaffected, and the counters prove each
        recovery path ran.
        """
        policy = FaultPolicy(task_timeout_s=2.0, max_retries=2,
                             backoff_base_s=0.001, backoff_cap_s=0.002)
        # The stall fires on two attempts: if the crash breaks the pool
        # while "stally" is in flight, its first attempt is charged as a
        # pool-crash without ever stalling — the second attempt then
        # guarantees the timeout path runs regardless of interleaving.
        plan = FaultPlan.of(
            FaultSpec(match="crashy", mode="crash", times=1),
            FaultSpec(match="stally", mode="stall", delay_s=30.0, times=2),
            FaultSpec(match="poison", times=99),
        )
        tasks = [probe(f"t{i}", value=i) for i in range(3)]
        tasks += [probe("crashy", value=3), probe("stally", value=4),
                  probe("poison", value=5)]
        failures = {}
        with telemetry_session("chaos-pool") as telemetry:
            with fault_plan(plan, env=True):
                results = ParallelExecutor(jobs=2, fault_policy=policy).map(
                    tasks, failures=failures
                )
            counters = telemetry.snapshot()["counters"]
        values = [None if r is None else r["value"] for r in results]
        assert values == [0, 1, 2, 3, 4, None]
        assert set(failures) == {"poison"}
        assert failures["poison"]["attempts"] == 3
        assert counters["executor.pool_rebuilds"] >= 1
        assert counters["executor.timeouts"] >= 1
        assert counters["executor.quarantined"] == 1

    def test_clean_pool_run_returns_ordered_results(self):
        policy = FaultPolicy(max_retries=1)
        tasks = [probe(f"t{i}", value=i) for i in range(8)]
        results = ParallelExecutor(jobs=2, fault_policy=policy).map(tasks)
        assert [r["value"] for r in results] == list(range(8))

    def test_watchdog_rebuild_sized_for_requeued_victims(self, monkeypatch):
        """Every-task-stuck must rebuild a full-width pool, not one worker.

        Regression: the watchdog used to rebuild *before* requeueing
        victims, sizing the new pool from an empty waiting queue — a single
        worker then served up to ``jobs`` resubmissions, and the queue wait
        counted against the hard deadline, falsely timing out healthy
        retries.  Uninterruptible probes (they swallow the worker-side
        TaskTimeout) force the parent-watchdog path deterministically.
        """
        sizes = []
        original = ParallelExecutor._new_pool

        def spying_new_pool(self, backlog):
            pool = original(self, backlog)
            sizes.append(pool._max_workers)
            return pool

        monkeypatch.setattr(ParallelExecutor, "_new_pool", spying_new_pool)
        policy = FaultPolicy(task_timeout_s=0.2, grace_s=0.2, max_retries=1,
                             backoff_base_s=0.001, backoff_cap_s=0.002)

        def hang(task_id):
            return TaskSpec(
                task_id=task_id, kind="probe",
                payload={"sleep_s": 30.0, "uninterruptible": True}, seed=1,
            )

        failures = {}
        results = ParallelExecutor(jobs=2, fault_policy=policy).map(
            [hang("h0"), hang("h1")], failures=failures
        )
        assert results == [None, None]
        assert set(failures) == {"h0", "h1"}
        assert all(f["reason"] == "timeout" for f in failures.values())
        # sizes[0] is the initial pool; sizes[1] is the rebuild after the
        # first watchdog sweep, which must be full width because both
        # victims were requeued for their retry before the rebuild.
        assert sizes[0] == 2
        assert sizes[1] == 2


class TestTaskTimeoutError:
    def test_is_picklable(self):
        import pickle

        exc = TaskTimeout("task t0 exceeded 2.0s")
        clone = pickle.loads(pickle.dumps(exc))
        assert isinstance(clone, TaskTimeout)
        assert "t0" in str(clone)


class TestProgressJournal:
    def test_records_and_last_line_wins(self, tmp_path):
        journal = ProgressJournal(tmp_path / JOURNAL_NAME)
        assert not journal.exists()
        assert journal.load() == {}
        journal.record("t0", "retried", attempt=1, error="boom")
        journal.record("t0", "completed", fingerprint="f" * 64, attempt=1,
                       origin="computed")
        journal.record("t1", "failed", attempt=3, error="poisoned")
        state = journal.load()
        assert state["t0"]["status"] == "completed"
        assert state["t1"]["status"] == "failed"
        assert journal.completed() == {"t0": "f" * 64}

    def test_torn_final_line_is_tolerated(self, tmp_path):
        journal = ProgressJournal(tmp_path / JOURNAL_NAME)
        journal.record("t0", "completed", fingerprint="a" * 64)
        with open(journal.path, "ab") as handle:
            handle.write(b'{"task_id": "t1", "status": "comp')  # torn write
        state = journal.load()
        assert set(state) == {"t0"}
        assert journal.corrupt_lines == 1

    def test_binary_garbage_is_tolerated(self, tmp_path):
        journal = ProgressJournal(tmp_path / JOURNAL_NAME)
        journal.record("t0", "completed")
        with open(journal.path, "ab") as handle:
            handle.write(b"\xff\xfe\x00garbage\n")
        journal.record("t1", "completed")
        state = journal.load()
        assert set(state) == {"t0", "t1"}
        assert journal.corrupt_lines == 1

    def test_lines_are_sorted_json(self, tmp_path):
        journal = ProgressJournal(tmp_path / JOURNAL_NAME)
        journal.record("t0", "completed", fingerprint="a" * 64)
        line = journal.path.read_text(encoding="utf-8").strip()
        parsed = json.loads(line)
        assert list(parsed) == sorted(parsed)
