"""Test suite for the repro package.

A package (not a bare directory) so the golden-trace regeneration script is
runnable as ``PYTHONPATH=src python -m tests.regen_goldens``.
"""
