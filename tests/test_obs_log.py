"""Structured logger: line format, thresholds, CLI wiring."""

import io

import pytest

from repro.obs.log import LEVELS, StructLogger, configure_logging, get_logger


def capture():
    stream = io.StringIO()
    return stream, StructLogger(stream=stream)


class TestLineFormat:
    def test_basic_line(self):
        stream, log = capture()
        log.info("campaign", experiment="table1", agree="2/2")
        assert stream.getvalue() == (
            "level=info event=campaign experiment=table1 agree=2/2\n"
        )

    def test_values_with_spaces_are_quoted(self):
        stream, log = capture()
        log.error("perf_fail", error="baseline not found")
        assert 'error="baseline not found"' in stream.getvalue()

    def test_values_with_equals_are_quoted(self):
        stream, log = capture()
        log.info("hint", cmd="repro-io obs summary x")
        assert 'cmd="repro-io obs summary x"' in stream.getvalue()

    def test_floats_render_compactly(self):
        stream, log = capture()
        log.info("x", wall=1.23456789)
        assert "wall=1.23457" in stream.getvalue()

    def test_booleans_render_lowercase(self):
        stream, log = capture()
        log.info("x", cached=True)
        assert "cached=true" in stream.getvalue()

    def test_embedded_quotes_escaped(self):
        stream, log = capture()
        log.info("x", msg='say "hi"')
        assert '\\"hi\\"' in stream.getvalue()


class TestThresholds:
    def test_debug_suppressed_at_info(self):
        stream, log = capture()
        log.debug("noise")
        assert stream.getvalue() == ""

    def test_debug_printed_at_debug(self):
        stream, log = capture()
        log.set_level("debug")
        log.debug("noise")
        assert "level=debug" in stream.getvalue()

    def test_warn_and_error_survive_quiet(self):
        stream, log = capture()
        log.set_level("warn")
        log.info("progress")
        log.warn("caution")
        log.error("broken")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("level=warn")
        assert lines[1].startswith("level=error")

    def test_is_enabled_tracks_threshold(self):
        _, log = capture()
        log.set_level("warn")
        assert not log.is_enabled("info")
        assert log.is_enabled("error")

    def test_unknown_level_rejected(self):
        _, log = capture()
        with pytest.raises(ValueError, match="unknown log level"):
            log.set_level("loud")

    def test_levels_are_ordered(self):
        assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warn"] < LEVELS["error"]


class TestConfigureLogging:
    @pytest.fixture(autouse=True)
    def _restore(self):
        yield
        configure_logging()  # back to the info default for other tests

    def test_default_threshold_is_info(self):
        log = configure_logging()
        assert log.level == "info"
        assert log is get_logger()

    def test_verbose_lowers_to_debug(self):
        assert configure_logging(verbose=True).level == "debug"

    def test_quiet_raises_to_warn(self):
        assert configure_logging(quiet=True).level == "warn"

    def test_quiet_wins_over_verbose(self):
        assert configure_logging(verbose=True, quiet=True).level == "warn"

    def test_lazy_stream_follows_sys_stderr(self, capsys):
        # The process logger resolves sys.stderr per call, so pytest's
        # capture (a fresh stderr per test) sees the lines.
        configure_logging()
        get_logger().info("hello", n=1)
        assert "event=hello n=1" in capsys.readouterr().err
