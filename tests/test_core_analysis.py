"""Tests for scenario builders, root-cause attribution, flow-control diagnosis,
reporting, and the analysis helpers."""

import json

import numpy as np
import pytest

from repro import units
from repro.analysis.asciiplot import ascii_plot, plot_delta_sweep, plot_series
from repro.analysis.tables import rows_to_csv, summary_to_json, sweep_to_csv
from repro.analysis.traces import progress_slowdown_point, window_statistics
from repro.config.presets import make_scenario
from repro.core.delta import DeltaPoint, DeltaSweep
from repro.core.flowcontrol import diagnose_flow_control
from repro.core.reporting import format_comparison, format_delta_sweep, format_summary, format_table
from repro.core.rootcause import Contender, attribute_root_cause
from repro.core.scenarios import (
    colocated_filesystem_scenario,
    dedicated_writer_scenario,
    fast_backend_scenario,
    partitioned_servers_scenario,
    throttled_network_scenario,
)
from repro.errors import AnalysisError
from repro.sim.timeseries import TimeSeries


class TestScenarioBuilders:
    def test_dedicated_writer(self):
        scenario = make_scenario("tiny")
        single = dedicated_writer_scenario(scenario)
        for app, orig in zip(single.applications, scenario.applications):
            assert app.procs_per_node == 1
            assert app.total_bytes == pytest.approx(orig.total_bytes)

    def test_partitioned_servers(self):
        scenario = make_scenario("tiny")
        part = partitioned_servers_scenario(scenario)
        servers = [set(part.app_servers(a)) for a in part.applications]
        assert servers[0].isdisjoint(servers[1])

    def test_fast_backend(self):
        scenario = make_scenario("tiny", device="hdd", sync_mode="sync-on")
        fast = fast_backend_scenario(scenario, backend="ram", sync=False)
        assert fast.filesystem.device.name == "RAM"
        assert fast.filesystem.sync_mode.value == "sync-off"

    def test_throttled_network(self):
        scenario = make_scenario("tiny")
        throttled = throttled_network_scenario(scenario, network="1g")
        assert throttled.platform.network.client_nic_bw < scenario.platform.network.client_nic_bw

    def test_colocated(self):
        scenario = colocated_filesystem_scenario(device="ssd", scale="tiny")
        assert scenario.filesystem.n_servers == 1
        assert scenario.applications[0].n_processes == 1


class TestRootCauseAndFlowControl:
    def test_device_dominates_sync_on_hdd(self, tiny_contended_result):
        report = attribute_root_cause(tiny_contended_result)
        assert report.scores[Contender.DEVICES] > 0.5
        # With sync ON on HDDs the storage side of the path (device and the
        # server drain path it saturates) dominates, not the client NICs.
        assert report.dominant in (
            Contender.DEVICES,
            Contender.SERVERS,
            Contender.FLOW_CONTROL,
        )
        assert report.scores[Contender.CLIENT_NIC] < report.scores[Contender.DEVICES]
        assert "dominant root cause" in report.describe()
        ranked = report.ranked()
        assert ranked[0][1] >= ranked[-1][1]

    def test_flow_control_diagnosis_runs(self, tiny_contended_result):
        diagnosis = diagnose_flow_control(tiny_contended_result)
        assert diagnosis.collapse_rate >= 0
        assert set(diagnosis.collapses_per_app) == {"A", "B"}
        assert isinstance(diagnosis.describe(), str)
        assert diagnosis.unfairness_ratio() >= 1.0


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 3.14159]], title="demo")
        assert "demo" in text
        assert "3.14" in text

    def test_format_summary(self):
        text = format_summary({"alpha": 1.0, "beta": 2.5}, title="metrics")
        assert "alpha" in text and "2.5" in text

    def test_format_comparison(self):
        text = format_comparison({"HDD": {"alone": 13.4, "slowdown": 2.49}})
        assert "HDD" in text and "2.49" in text

    def test_format_delta_sweep(self):
        sweep = DeltaSweep(
            points=[
                DeltaPoint(0.0, {"A": 2.0, "B": 2.0}, {"A": 1.0, "B": 1.0}, {"A": 0, "B": 0}, 2.0)
            ],
            alone_times={"A": 1.0, "B": 1.0},
            label="demo",
        )
        text = format_delta_sweep(sweep)
        assert "peak interference factor" in text
        assert "IF_A" in text


class TestAsciiPlot:
    def test_ascii_plot_contains_markers(self):
        text = ascii_plot([0, 1, 2], {"y": [1.0, 3.0, 2.0]}, width=40, height=8)
        assert "x = y" in text
        assert "|" in text

    def test_plot_validation(self):
        with pytest.raises(AnalysisError):
            ascii_plot([], {"y": []})
        with pytest.raises(AnalysisError):
            ascii_plot([0, 1], {})
        with pytest.raises(AnalysisError):
            ascii_plot([0, 1], {"y": [1.0]})
        with pytest.raises(AnalysisError):
            ascii_plot([0, 1], {"y": [1.0, 2.0]}, width=5, height=2)

    def test_plot_delta_sweep(self):
        sweep = DeltaSweep(
            points=[
                DeltaPoint(-1.0, {"A": 1.0, "B": 1.2}, {}, {}, 1.0),
                DeltaPoint(0.0, {"A": 2.0, "B": 2.0}, {}, {}, 2.0),
                DeltaPoint(1.0, {"A": 1.2, "B": 1.0}, {}, {}, 1.2),
            ],
            alone_times={"A": 1.0, "B": 1.0},
        )
        assert "write time" in plot_delta_sweep(sweep, title="demo")

    def test_plot_series(self):
        ts = TimeSeries(name="window", unit="bytes")
        for i in range(10):
            ts.append(float(i), float(i % 3))
        other = TimeSeries(name="progress")
        for i in range(10):
            other.append(float(i), i / 10.0)
        out = plot_series(ts, other=other)
        assert "window" in out
        with pytest.raises(AnalysisError):
            plot_series(TimeSeries(name="empty"))


class TestTablesExport:
    def test_rows_to_csv(self):
        csv_text = rows_to_csv([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert csv_text.splitlines()[0] == "a,b"
        assert "3,4" in csv_text
        with pytest.raises(AnalysisError):
            rows_to_csv([])

    def test_sweep_to_csv(self):
        sweep = DeltaSweep(
            points=[DeltaPoint(0.0, {"A": 2.0, "B": 2.2}, {}, {}, 2.2)],
            alone_times={"A": 1.0, "B": 1.0},
        )
        csv_text = sweep_to_csv(sweep)
        assert "delta" in csv_text.splitlines()[0]

    def test_summary_to_json(self):
        payload = json.loads(summary_to_json({"x": 1.5}))
        assert payload == {"x": 1.5}


class TestTraceAnalytics:
    def test_window_statistics(self):
        ts = TimeSeries(name="window.A", unit="bytes")
        for t, v in [(0, 16000), (1, 16000), (2, 1000), (3, 800), (4, 16000)]:
            ts.append(float(t), float(v))
        stats = window_statistics(ts)
        assert stats.maximum == 16000
        assert stats.minimum == 800
        assert 0.0 < stats.collapse_fraction < 1.0
        assert stats.collapsed(threshold_fraction=0.2)
        with pytest.raises(AnalysisError):
            window_statistics(TimeSeries(name="empty"))

    def test_progress_slowdown_point(self, tiny_traced_result):
        point_a = progress_slowdown_point(tiny_traced_result, "A")
        point_b = progress_slowdown_point(tiny_traced_result, "B")
        assert 0.0 <= point_a <= 1.0
        assert 0.0 <= point_b <= 1.0
