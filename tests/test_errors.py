"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_hierarchy():
    assert issubclass(errors.ConfigurationError, errors.ReproError)
    assert issubclass(errors.ConfigurationError, ValueError)
    assert issubclass(errors.SimulationError, errors.ReproError)
    assert issubclass(errors.SimulationError, RuntimeError)
    assert issubclass(errors.SchedulingError, errors.SimulationError)
    assert issubclass(errors.ExperimentError, errors.ReproError)
    assert issubclass(errors.AnalysisError, errors.ReproError)


def test_catchable_as_base():
    with pytest.raises(errors.ReproError):
        raise errors.SchedulingError("too late")
    with pytest.raises(errors.ReproError):
        raise errors.AnalysisError("empty")
