"""Smoke tests: every shipped example must run end to end at the tiny scale.

The examples are part of the public API surface (they are what a new user
copies from), so they are executed here as subprocesses exactly as a user
would run them.  They all accept an optional scale argument; ``tiny`` keeps
the whole module under a minute.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_EXAMPLES = {
    "quickstart.py",
    "checkpoint_interference.py",
    "mitigation_comparison.py",
    "root_cause_diagnosis.py",
    "transport_comparison.py",
    "io_scheduling.py",
    "many_applications.py",
}

#: A phrase each example must print (proves it reached its reporting stage).
EXPECTED_OUTPUT = {
    "quickstart.py": "interference factor",
    "checkpoint_interference.py": "climate",
    "mitigation_comparison.py": "Mitigation comparison",
    "root_cause_diagnosis.py": "dominant root cause",
    "transport_comparison.py": "Transport comparison",
    "io_scheduling.py": "peak interference factor",
    "many_applications.py": "Concurrent applications",
}


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), "tiny"],
        capture_output=True,
        text=True,
        timeout=300,
        check=False,
    )


def test_examples_directory_is_complete():
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert EXPECTED_EXAMPLES <= present


@pytest.mark.parametrize("name", sorted(EXPECTED_EXAMPLES))
def test_example_runs_at_tiny_scale(name):
    proc = run_example(name)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert EXPECTED_OUTPUT[name].lower() in proc.stdout.lower(), proc.stdout[-2000:]
    # Examples must not spew tracebacks even when they succeed.
    assert "Traceback" not in proc.stderr
