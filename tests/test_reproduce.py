"""``repro-io reproduce``: end-to-end re-verification of persisted runs."""

import json

import pytest

from repro.cli import main
from repro.lake.reproduce import ReproduceReport, reproduce_run
from repro.runner.store import sha256_file, write_run


@pytest.fixture(scope="module")
def matrix_run(tmp_path_factory):
    """One persisted tiny matrix run (plus its warm cache), built once."""
    root = tmp_path_factory.mktemp("reproduce")
    assert main([
        "-q", "matrix", "--archetypes", "checkpoint,analytics",
        "--scale", "tiny", "--no-output",
        "--store", str(root / "runs"),
        "--cache-dir", str(root / "cache"),
    ]) == 0
    runs = sorted((root / "runs").iterdir())
    assert len(runs) == 1
    return {"run_dir": runs[0], "cache_dir": str(root / "cache")}


class TestReproducePass:
    def test_fresh_run_reproduces_byte_identically(self, matrix_run):
        report = reproduce_run(
            matrix_run["run_dir"], cache_dir=matrix_run["cache_dir"]
        )
        assert report.ok, report.render()
        by_name = {c.name: c for c in report.checks}
        assert by_name["re-execute"].status == "ok"
        assert "cached" in by_name["re-execute"].detail
        assert by_name["regenerated matrix.json"].status == "ok"
        assert by_name["regenerated EXPERIMENTS.md"].status == "ok"
        assert "byte-identical" in by_name["regenerated matrix.json"].detail

    def test_cli_exit_zero_and_pass_line(self, matrix_run, capsys):
        rc = main([
            "-q", "reproduce", str(matrix_run["run_dir"]),
            "--cache-dir", matrix_run["cache_dir"],
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[reproduce] PASS" in out

    def test_verify_only_stops_before_reexecution(self, matrix_run, capsys):
        rc = main([
            "-q", "reproduce", str(matrix_run["run_dir"]), "--verify-only",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "re-execute" not in out
        assert "checksum matrix.json" in out


class TestReproduceFail:
    def test_tampered_artifact_fails_the_checksum(self, matrix_run, tmp_path,
                                                  capsys):
        import shutil

        run_dir = tmp_path / "run"
        shutil.copytree(matrix_run["run_dir"], run_dir)
        (run_dir / "EXPERIMENTS.md").write_text("tampered\n", encoding="utf-8")
        rc = main([
            "-q", "reproduce", str(run_dir),
            "--cache-dir", matrix_run["cache_dir"],
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL checksum EXPERIMENTS.md" in out
        assert "[reproduce] FAIL" in out

    def test_version_drift_fails_with_explanation(self, matrix_run, tmp_path):
        import shutil

        run_dir = tmp_path / "run"
        shutil.copytree(matrix_run["run_dir"], run_dir)
        # Rewrite the stored document's version and re-stamp its checksum so
        # only the version check (not the integrity stage) can catch it.
        document = json.loads((run_dir / "matrix.json").read_text("utf-8"))
        document["version"] = "0.0.1"
        text = json.dumps(document, indent=2, sort_keys=True) + "\n"
        (run_dir / "matrix.json").write_text(text, encoding="utf-8")
        manifest = json.loads((run_dir / "manifest.json").read_text("utf-8"))
        manifest["artifacts"]["matrix.json"]["sha256"] = sha256_file(
            run_dir / "matrix.json"
        )
        manifest["artifacts"]["matrix.json"]["bytes"] = (
            (run_dir / "matrix.json").stat().st_size
        )
        (run_dir / "manifest.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        report = reproduce_run(run_dir, cache_dir=matrix_run["cache_dir"])
        assert not report.ok
        version = [c for c in report.checks if c.name == "version"][0]
        assert version.status == "FAIL"
        assert "0.0.1" in version.detail

    def test_non_matrix_run_is_not_reproducible(self, tmp_path, capsys):
        write_run(
            tmp_path / "run", run_id="sweep", seed=0, config={},
            artifacts={"sweep.json": "{}\n"}, timestamp=0.0,
        )
        rc = main(["-q", "reproduce", str(tmp_path / "run")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "no matrix.json recipe" in out
        assert "repro-io verify" in out

    def test_missing_manifest_fails(self, tmp_path):
        report = reproduce_run(tmp_path)
        assert not report.ok
        assert report.checks[0].name == "manifest"


class TestIntegrityStage:
    def test_missing_artifact_fails(self, tmp_path):
        write_run(
            tmp_path, run_id="r", seed=0, config={},
            artifacts={"sweep.json": "{}\n"}, timestamp=0.0,
        )
        (tmp_path / "sweep.json").unlink()
        report = reproduce_run(tmp_path, verify_only=True)
        checks = {c.name: c for c in report.checks}
        assert checks["checksum sweep.json"].status == "FAIL"
        assert checks["checksum sweep.json"].detail == "artifact missing"

    def test_unreadable_manifest_fails(self, tmp_path):
        (tmp_path / "manifest.json").write_text("{ nope", encoding="utf-8")
        report = reproduce_run(tmp_path)
        assert not report.ok
        assert "unreadable" in report.checks[0].detail

    def test_missing_required_fields_fail(self, tmp_path):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"artifacts": {}}), encoding="utf-8"
        )
        report = reproduce_run(tmp_path, verify_only=True)
        manifest_check = report.checks[0]
        assert manifest_check.status == "FAIL"
        assert "run_id" in manifest_check.detail


class TestFirstDifference:
    def test_points_at_the_first_divergent_byte(self):
        from repro.lake.reproduce import _first_difference

        detail = _first_difference(b"abcdef", b"abXdef")
        assert "byte 2" in detail

    def test_prefix_only_difference_reports_lengths(self):
        from repro.lake.reproduce import _first_difference

        detail = _first_difference(b"abc", b"abcdef")
        assert "common prefix of 3" in detail


class TestReport:
    def test_render_counts_skips_out_of_the_denominator(self):
        report = ReproduceReport(run_dir="r")
        report.add("a", "ok", "fine")
        report.add("b", "skip", "older version")
        report.add("c", "FAIL", "boom")
        text = report.render()
        assert "[reproduce] ok   a: fine" in text
        assert "[reproduce] FAIL r: 1/2 checks passed" in text
        assert not report.ok

    def test_all_ok_is_a_pass(self):
        report = ReproduceReport(run_dir="r")
        report.add("a", "ok")
        assert report.ok
        assert "PASS r: 1/1" in report.render()
