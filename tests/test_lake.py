"""The result lake: index reconciliation, queries, and the lake CLI."""

import json
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import UsageError
from repro.lake import (
    aggregate_entries,
    attach_derived,
    load_lake,
    parse_sort,
    parse_where,
    run_query,
    scan_lake,
)
from repro.lake.query import parse_aggregate, resolve_field
from repro.runner.cache import ResultCache, fingerprint_payload


# --------------------------------------------------------------------------- #
# Fixtures: a tiny synthetic lake with matrix-shaped key material
# --------------------------------------------------------------------------- #

SPEC_A = {"archetype": "checkpoint", "name": "checkpoint"}
SPEC_B = {"archetype": "randomread", "name": "randomread"}
OPTS = {"device": "hdd", "delay": 0.0}


def put_alone(cache, spec, phase_time, scale="tiny"):
    key = {
        "task_id": f"alone:{spec['name']}", "kind": "matrix-alone",
        "scale": scale, "options": OPTS, "stepping": None, "specs": [spec],
    }
    fp = fingerprint_payload("matrix-alone", key)
    cache.put(fp, {"phase_time": phase_time, "n_steps": 10}, key_material=key)
    return fp


def put_pair(cache, spec_a, spec_b, phase_times, makespan, scale="tiny"):
    key = {
        "task_id": f"pair:{spec_a['name']}+{spec_b['name']}",
        "kind": "matrix-pair", "scale": scale, "options": OPTS,
        "stepping": None, "specs": [spec_a, spec_b],
    }
    fp = fingerprint_payload("matrix-pair", key)
    cache.put(
        fp,
        {"phase_times": list(phase_times), "makespan": makespan,
         "labels": ["a", "b"]},
        key_material=key,
    )
    return fp


@pytest.fixture
def lake_dir(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    put_alone(cache, SPEC_A, 2.0)
    put_alone(cache, SPEC_B, 4.0)
    put_pair(cache, SPEC_A, SPEC_B, [3.0, 6.0], 6.0)
    return str(tmp_path / "cache")


# --------------------------------------------------------------------------- #
# Reconciliation
# --------------------------------------------------------------------------- #


class TestReconciliation:
    def test_fresh_cache_is_coherent(self, lake_dir):
        view = load_lake(lake_dir)
        assert view.coherent
        assert len(view.entries) == 3
        assert view.ghosts == [] and view.backfilled == []

    def test_load_agrees_with_object_scan(self, lake_dir):
        assert load_lake(lake_dir).entries == scan_lake(lake_dir)

    def test_ghost_lines_never_surface(self, lake_dir):
        cache = ResultCache(lake_dir)
        doomed = cache.entries()[0]
        cache._object_path(doomed).unlink()
        view = load_lake(lake_dir)
        assert view.ghosts == [doomed]
        assert not view.coherent
        assert doomed not in {e["fingerprint"] for e in view.entries}
        assert view.entries == scan_lake(lake_dir)

    def test_unindexed_objects_are_backfilled(self, lake_dir):
        cache = ResultCache(lake_dir)
        cache.index_path.unlink()  # simulate a pre-index store
        view = load_lake(lake_dir)
        assert sorted(view.backfilled) == cache.entries()
        assert len(view.entries) == 3
        assert view.entries == scan_lake(lake_dir)

    def test_backfilled_entries_flatten_lists_like_live_lines(self, lake_dir):
        cache = ResultCache(lake_dir)
        cache.index_path.unlink()
        pairs = [
            e for e in load_lake(lake_dir).entries
            if e["key"]["kind"] == "matrix-pair"
        ]
        assert pairs[0]["headline"]["phase_times.0"] == 3.0
        assert pairs[0]["headline"]["phase_times.1"] == 6.0

    def test_duplicate_lines_last_occurrence_wins(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = {"task_id": "t", "kind": "k"}
        fp = fingerprint_payload("k", key)
        cache.put(fp, {"v": 1.0}, key_material=key)
        cache.put(fp, {"v": 2.0}, key_material=key)
        view = load_lake(str(tmp_path))
        assert view.duplicates == 1
        assert len(view.entries) == 1
        assert view.entries[0]["headline"] == {"v": 2.0}

    def test_corrupt_index_lines_are_skipped_and_counted(self, lake_dir):
        cache = ResultCache(lake_dir)
        with open(cache.index_path, "ab") as handle:
            handle.write(b'{"fingerprint": "torn-by-a-k')  # torn final line
        view = load_lake(lake_dir)
        assert view.corrupt_lines == 1
        assert len(view.entries) == 3
        assert view.entries == scan_lake(lake_dir)

    def test_binary_garbage_in_index_does_not_poison_the_read(self, lake_dir):
        cache = ResultCache(lake_dir)
        raw = cache.index_path.read_bytes().splitlines(keepends=True)
        # Corrupt the *middle* line: later valid lines must still parse.
        raw[1] = b"\xff\xfe\x00 binary garbage \xba\xad\n"
        cache.index_path.write_bytes(b"".join(raw))
        view = load_lake(lake_dir)
        assert view.corrupt_lines == 1
        # The object whose line was destroyed is healed by the backfill.
        assert len(view.backfilled) == 1
        assert len(view.entries) == 3
        assert view.entries == scan_lake(lake_dir)

    def test_compact_heals_corrupt_lines(self, lake_dir):
        cache = ResultCache(lake_dir)
        with open(cache.index_path, "ab") as handle:
            handle.write(b"not json at all\n")
        assert load_lake(lake_dir).corrupt_lines == 1
        cache.compact_index()
        view = load_lake(lake_dir)
        assert view.corrupt_lines == 0
        assert view.coherent
        assert len(view.entries) == 3

    def test_corrupt_lines_counter_emitted(self, lake_dir):
        from repro.obs.telemetry import telemetry_session

        cache = ResultCache(lake_dir)
        with open(cache.index_path, "ab") as handle:
            handle.write(b"garbage\n")
        with telemetry_session("lake-corrupt") as telemetry:
            load_lake(lake_dir)
            counters = telemetry.snapshot()["counters"]
        assert counters["lake.reconcile.corrupt_lines"] == 1


# --------------------------------------------------------------------------- #
# Field resolution / filters / sort / aggregate
# --------------------------------------------------------------------------- #


class TestFieldResolution:
    def test_dotted_descent(self):
        entry = {"key": {"kind": "matrix-pair"}}
        assert resolve_field(entry, "key.kind") == "matrix-pair"

    def test_longest_match_for_flat_dotted_keys(self):
        entry = {"headline": {"phase_times.0": 3.0}}
        assert resolve_field(entry, "headline.phase_times.0") == 3.0

    def test_missing_field_is_none(self):
        assert resolve_field({"key": {}}, "key.kind") is None
        assert resolve_field({}, "nope.deeper") is None


class TestParsing:
    @pytest.mark.parametrize("expr,op,value", [
        ("key.kind=matrix-pair", "=", "matrix-pair"),
        ("headline.makespan>=2.5", ">=", "2.5"),
        ("key.task_id~checkpoint", "~", "checkpoint"),
        ("headline.v!=1", "!=", "1"),
    ])
    def test_operators(self, expr, op, value):
        parsed = parse_where(expr)
        assert (parsed.op, parsed.value) == (op, value)

    def test_bare_field_means_present(self):
        assert parse_where("derived.dilation").op == "present"

    def test_malformed_filters_raise(self):
        with pytest.raises(UsageError):
            parse_where("")
        with pytest.raises(UsageError):
            parse_where("=value")
        with pytest.raises(UsageError):
            parse_where("field=")

    def test_sort_directions(self):
        assert parse_sort("f") == ("f", False)
        assert parse_sort("f:desc") == ("f", True)
        with pytest.raises(UsageError):
            parse_sort("f:sideways")
        with pytest.raises(UsageError):
            parse_sort(":desc")

    def test_aggregate_spec(self):
        assert parse_aggregate("max:derived.dilation") == ("max", "derived.dilation")
        with pytest.raises(UsageError):
            parse_aggregate("median:f")
        with pytest.raises(UsageError):
            parse_aggregate("max")


class TestQueries:
    def test_filter_and_numeric_comparison(self, lake_dir):
        entries = load_lake(lake_dir).entries
        hits = run_query(entries, where=[parse_where("headline.phase_time>=3")])
        assert [e["key"]["task_id"] for e in hits] == ["alone:randomread"]

    def test_missing_field_never_matches(self, lake_dir):
        entries = load_lake(lake_dir).entries
        assert run_query(entries, where=[parse_where("headline.nope>0")]) == []

    def test_sort_and_limit(self, lake_dir):
        entries = load_lake(lake_dir).entries
        top = run_query(
            entries, sort=parse_sort("headline.makespan:desc"), limit=1
        )
        assert len(top) == 1
        assert top[0]["key"]["kind"] == "matrix-pair"

    def test_entries_missing_the_sort_field_sort_last(self, lake_dir):
        entries = load_lake(lake_dir).entries
        ordered = run_query(entries, sort=parse_sort("headline.makespan"))
        assert ordered[-1]["headline"].get("makespan") is None or \
            ordered[0]["headline"].get("makespan") is not None

    def test_aggregates(self, lake_dir):
        entries = load_lake(lake_dir).entries
        rows = aggregate_entries(entries, [("max", "headline.phase_time")])
        assert rows == [
            {"aggregate": "max(headline.phase_time)", "value": 4.0, "n": 2}
        ]

    def test_aggregate_with_no_numeric_values_reports_none(self, lake_dir):
        entries = load_lake(lake_dir).entries
        rows = aggregate_entries(entries, [("mean", "headline.nope")])
        assert rows == [
            {"aggregate": "mean(headline.nope)", "value": None, "n": 0}
        ]

    def test_group_by(self, lake_dir):
        entries = load_lake(lake_dir).entries
        rows = aggregate_entries(
            entries, [("count", "fingerprint")], group_by="key.kind"
        )
        assert {(r["key.kind"], r["value"]) for r in rows} == {
            ("matrix-alone", 2), ("matrix-pair", 1),
        }


class TestDerivedMetrics:
    def test_pair_gains_dilation_and_slowdowns(self, lake_dir):
        entries = attach_derived(load_lake(lake_dir).entries)
        pair = [e for e in entries if e["key"]["kind"] == "matrix-pair"][0]
        derived = pair["derived"]
        assert derived["alone_a"] == 2.0 and derived["alone_b"] == 4.0
        assert derived["dilation"] == pytest.approx(6.0 / 4.0)
        assert derived["slowdown_a"] == pytest.approx(3.0 / 2.0)
        assert derived["slowdown_b"] == pytest.approx(6.0 / 4.0)
        assert derived["asymmetry"] == pytest.approx(0.0)

    def test_join_ignores_the_pair_delay(self, tmp_path):
        # Alone baselines are normalized to delay=0; a pair run with a
        # nonzero delay must still find them.
        cache = ResultCache(str(tmp_path))
        put_alone(cache, SPEC_A, 2.0)
        put_alone(cache, SPEC_B, 4.0)
        key = {
            "task_id": "pair:checkpoint+randomread", "kind": "matrix-pair",
            "scale": "tiny", "options": {"device": "hdd", "delay": 1.5},
            "stepping": None, "specs": [SPEC_A, SPEC_B],
        }
        cache.put(
            fingerprint_payload("matrix-pair", key),
            {"phase_times": [3.0, 6.0], "makespan": 7.5},
            key_material=key,
        )
        entries = attach_derived(load_lake(str(tmp_path)).entries)
        pair = [e for e in entries if e["key"]["kind"] == "matrix-pair"][0]
        assert pair["derived"]["dilation"] == pytest.approx(7.5 / 4.0)

    def test_incomplete_join_adds_nothing(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        put_pair(cache, SPEC_A, SPEC_B, [3.0, 6.0], 6.0)  # no alone baselines
        entries = attach_derived(load_lake(str(tmp_path)).entries)
        assert "derived" not in entries[0]

    def test_worst_dilation_query_end_to_end(self, lake_dir):
        # The motivating query: worst observed dilation for the pair.
        cache = ResultCache(lake_dir)
        put_pair(cache, SPEC_A, SPEC_B, [3.5, 7.0], 8.0, scale="reduced")
        put_alone(cache, SPEC_A, 2.0, scale="reduced")
        put_alone(cache, SPEC_B, 4.0, scale="reduced")
        worst = run_query(
            load_lake(lake_dir).entries,
            where=[parse_where("key.kind=matrix-pair"),
                   parse_where("key.task_id~checkpoint"),
                   parse_where("key.task_id~randomread")],
            sort=parse_sort("derived.dilation:desc"),
            limit=1,
        )
        assert worst[0]["key"]["scale"] == "reduced"
        assert worst[0]["derived"]["dilation"] == pytest.approx(2.0)


# --------------------------------------------------------------------------- #
# Reconciliation property: the lake never disagrees with objects/
# --------------------------------------------------------------------------- #


def _apply_op(cache, op, i):
    key = {"task_id": f"t{i}", "kind": "k", "i": i}
    if op == "put":
        cache.put(
            fingerprint_payload("k", key), {"v": float(i)}, key_material=key
        )
    elif op == "reput":  # duplicate index line for the same fingerprint
        cache.put(
            fingerprint_payload("k", key), {"v": float(i) + 0.5},
            key_material=key,
        )
    elif op == "clear":
        cache.clear()
    elif op == "migrate":
        cache.migrate()
    elif op == "legacy":
        # A pre-index, flat-layout object dropped in behind the cache's
        # back — exactly what migrate() must absorb coherently.
        fp = fingerprint_payload("legacy", {"i": i})
        entry = {
            "fingerprint": fp, "stored_at": 100.0 + i, "version": "legacy",
            "key": {"task_id": f"legacy{i}", "kind": "legacy"},
            "payload": {"v": float(i)},
        }
        objects = cache.root / "objects"
        objects.mkdir(parents=True, exist_ok=True)
        (objects / f"{fp}.json").write_text(json.dumps(entry), "utf-8")


class TestReconciliationProperty:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(
            st.sampled_from(["put", "reput", "clear", "migrate", "legacy"]),
            st.integers(min_value=0, max_value=4),
        ),
        max_size=12,
    ))
    def test_lake_always_agrees_with_objects(self, ops):
        root = tempfile.mkdtemp()
        try:
            cache = ResultCache(root)
            for op, i in ops:
                _apply_op(cache, op, i)
            view = load_lake(root)
            truth = scan_lake(root)
            # No ghosts, no missing: exactly one entry per object on disk,
            # and the reconciled entries match a full envelope rescan.
            assert view.entries == truth
            assert {e["fingerprint"] for e in view.entries} == set(
                fp for fp in cache.entries()
                if (cache.root / "objects" / fp[:2] / f"{fp}.json").is_file()
            )
            # Queries over the reconciled view agree with the ground truth.
            where = [parse_where("headline.v>=2")]
            assert (
                run_query(view.entries, where=where, derived=False)
                == run_query(truth, where=where, derived=False)
            )
        finally:
            shutil.rmtree(root, ignore_errors=True)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


class TestLakeTelemetry:
    def test_load_and_query_count(self, lake_dir):
        from repro.obs.telemetry import telemetry_session

        cache = ResultCache(lake_dir)
        doomed = cache.entries()[0]
        cache._object_path(doomed).unlink()
        cache.index_path.touch()  # keep ghost lines in place
        with telemetry_session("lake-test") as telemetry:
            view = load_lake(lake_dir)
            run_query(view.entries)
            counters = telemetry.snapshot()["counters"]
        assert counters["lake.entries"] == 2
        assert counters["lake.reconcile.ghosts"] == 1
        assert counters["lake.query"] == 1


class TestLakeCli:
    def test_stats_reports_coherent(self, lake_dir, capsys):
        assert main(["-q", "lake", "stats", "--cache-dir", lake_dir]) == 0
        out = capsys.readouterr().out
        assert "entries     3" in out
        assert "index is coherent" in out

    def test_stats_json(self, lake_dir, capsys):
        assert main(["-q", "lake", "stats", "--cache-dir", lake_dir,
                     "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 3 and stats["coherent"] is True

    def test_query_table_and_sort(self, lake_dir, capsys):
        assert main([
            "-q", "lake", "query", "--cache-dir", lake_dir,
            "--where", "key.kind=matrix-pair",
            "--sort", "derived.dilation:desc",
        ]) == 0
        out = capsys.readouterr().out
        assert "pair:checkpoint+randomread" in out
        assert "derived.dilation" in out  # sort column auto-appended
        assert "1 entries" in out

    def test_query_json(self, lake_dir, capsys):
        assert main([
            "-q", "lake", "query", "--cache-dir", lake_dir,
            "--where", "key.kind=matrix-alone", "--json",
        ]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == 2
        assert all(e["key"]["kind"] == "matrix-alone" for e in entries)

    def test_query_aggregate(self, lake_dir, capsys):
        assert main([
            "-q", "lake", "query", "--cache-dir", lake_dir,
            "--agg", "max:headline.phase_time", "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["value"] == 4.0

    def test_query_no_matches(self, lake_dir, capsys):
        assert main([
            "-q", "lake", "query", "--cache-dir", lake_dir,
            "--where", "key.kind=nope",
        ]) == 0
        assert "no matching entries" in capsys.readouterr().out

    def test_malformed_where_is_a_usage_error(self, lake_dir):
        with pytest.raises(SystemExit) as exc:
            main(["lake", "query", "--cache-dir", lake_dir, "--where", "=x"])
        assert exc.value.code == 2

    def test_malformed_sort_and_agg_are_usage_errors(self, lake_dir):
        for flags in (["--sort", "f:sideways"], ["--agg", "median:f"],
                      ["--limit", "-1"]):
            with pytest.raises(SystemExit) as exc:
                main(["lake", "query", "--cache-dir", lake_dir, *flags])
            assert exc.value.code == 2

    def test_group_by_without_agg_warns(self, lake_dir, capsys):
        assert main(["lake", "query", "--cache-dir", lake_dir,
                     "--group-by", "key.kind", "--limit", "0"]) == 0
        err = capsys.readouterr().err
        assert "no effect without --agg" in err

    def test_empty_aggregate_result_set(self, tmp_path, capsys):
        assert main(["-q", "lake", "query", "--cache-dir", str(tmp_path),
                     "--agg", "max:headline.v"]) == 0
        # An empty lake aggregates to a single row with value None.
        out = capsys.readouterr().out
        assert "max(headline.v)" in out

    def test_compact_heals_an_incoherent_index(self, lake_dir, capsys):
        cache = ResultCache(lake_dir)
        doomed = cache.entries()[0]
        cache._object_path(doomed).unlink()  # ghost line in the index
        assert main(["-q", "lake", "compact", "--cache-dir", lake_dir]) == 0
        out = capsys.readouterr().out
        assert "dropped 0 duplicates and 1 ghosts" in out
        view = load_lake(lake_dir)
        assert view.coherent
        assert view.index_lines == 2
