"""Tests for the content-addressed result cache."""

import json

import pytest

from repro._version import __version__
from repro.runner.cache import ResultCache, fingerprint


class TestFingerprint:
    def test_deterministic(self):
        assert fingerprint("table1", "tiny", True) == fingerprint("table1", "tiny", True)

    def test_is_sha256_hex(self):
        fp = fingerprint("table1", "tiny", False)
        assert len(fp) == 64
        int(fp, 16)  # parses as hex

    def test_every_ingredient_changes_the_fingerprint(self):
        base = fingerprint("table1", "tiny", False, overrides={}, version="1.0.0")
        assert fingerprint("figure2", "tiny", False, version="1.0.0") != base
        assert fingerprint("table1", "reduced", False, version="1.0.0") != base
        assert fingerprint("table1", "tiny", True, version="1.0.0") != base
        assert fingerprint("table1", "tiny", False, overrides={"seed": 1},
                           version="1.0.0") != base

    def test_version_bump_invalidates(self):
        old = fingerprint("table1", "tiny", False, version="1.0.0")
        new = fingerprint("table1", "tiny", False, version="1.0.1")
        assert old != new

    def test_default_version_is_package_version(self):
        assert fingerprint("table1", "tiny", False) == fingerprint(
            "table1", "tiny", False, version=__version__
        )

    def test_override_order_does_not_matter(self):
        a = fingerprint("t", "tiny", False, overrides={"a": 1, "b": 2})
        b = fingerprint("t", "tiny", False, overrides={"b": 2, "a": 1})
        assert a == b


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        fp = fingerprint("table1", "tiny", True)
        assert cache.get(fp) is None
        cache.put(fp, {"answer": 42})
        assert cache.get(fp) == {"answer": 42}
        assert cache.stats() == {
            "hits": 1, "misses": 1, "objects": 1, "shards": 1,
        }

    def test_version_bump_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(fingerprint("table1", "tiny", False, version="1.0.0"), {"v": 1})
        assert cache.get(fingerprint("table1", "tiny", False, version="1.0.1")) is None

    def test_survives_across_instances(self, tmp_path):
        fp = fingerprint("table1", "tiny", False)
        ResultCache(str(tmp_path)).put(fp, {"persisted": True})
        assert ResultCache(str(tmp_path)).get(fp) == {"persisted": True}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fp = fingerprint("table1", "tiny", False)
        path = cache.put(fp, {"ok": 1})
        path.write_text("{ truncated", encoding="utf-8")
        assert cache.get(fp) is None

    def test_foreign_format_entry_is_a_miss(self, tmp_path):
        # Valid JSON but not our envelope (no "payload" key / wrong type).
        cache = ResultCache(str(tmp_path))
        fp = fingerprint("table1", "tiny", False)
        path = cache.put(fp, {"ok": 1})
        path.write_text('{"foo": 1}', encoding="utf-8")
        assert cache.get(fp) is None
        path.write_text('[1, 2, 3]', encoding="utf-8")
        assert cache.get(fp) is None

    def test_entries_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fps = [fingerprint(e, "tiny", False) for e in ("table1", "figure2")]
        for fp in fps:
            cache.put(fp, {})
        assert cache.entries() == sorted(fps)
        assert cache.contains(fps[0])
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_key_material_recorded(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fp = fingerprint("table1", "tiny", False)
        path = cache.put(fp, {"x": 1}, key_material={"experiment_id": "table1"})
        entry = json.loads(path.read_text(encoding="utf-8"))
        assert entry["key"]["experiment_id"] == "table1"
        assert entry["fingerprint"] == fp

class TestGetManyAndHotTier:
    def test_get_many_mixes_found_and_missing(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        stored = fingerprint("table1", "tiny", False)
        absent = fingerprint("figure2", "tiny", False)
        cache.put(stored, {"v": 1})
        found = cache.get_many([stored, absent])
        assert found == {stored: {"v": 1}}
        assert cache.stats() == {
            "hits": 1, "misses": 1, "objects": 1, "shards": 1,
        }

    def test_fresh_put_probes_hit_the_hot_tier(self, tmp_path):
        from repro.obs.telemetry import telemetry_session

        cache = ResultCache(str(tmp_path))
        fp = fingerprint("table1", "tiny", False)
        cache.put(fp, {"v": 1})
        with telemetry_session("cache-test") as telemetry:
            assert cache.get_many([fp]) == {fp: {"v": 1}}
            counters = telemetry.snapshot()["counters"]
        assert counters["cache.probe"] == 1
        assert counters["cache.hit"] == 1
        assert counters["cache.hot_hit"] == 1

    def test_disk_read_populates_the_hot_tier(self, tmp_path):
        fp = fingerprint("table1", "tiny", False)
        ResultCache(str(tmp_path)).put(fp, {"v": 1})
        cache = ResultCache(str(tmp_path))  # cold hot tier
        assert cache.get_many([fp]) == {fp: {"v": 1}}  # disk read
        assert fp in cache._hot

    def test_single_get_stays_disk_authoritative(self, tmp_path):
        """Corruption behind the instance's back must still be a miss on
        get() even when the hot tier has the stale payload."""
        cache = ResultCache(str(tmp_path))
        fp = fingerprint("table1", "tiny", False)
        path = cache.put(fp, {"v": 1})
        assert fp in cache._hot
        path.write_text("{ truncated", encoding="utf-8")
        assert cache.get(fp) is None

    def test_lru_eviction_order(self, tmp_path):
        cache = ResultCache(str(tmp_path), hot_capacity=2)
        fps = [fingerprint(e, "tiny", False) for e in ("a", "b", "c")]
        for fp in fps[:2]:
            cache.put(fp, {"fp": fp})
        cache.get_many([fps[0]])  # refresh a: b is now least recent
        cache.put(fps[2], {"fp": fps[2]})
        assert set(cache._hot) == {fps[0], fps[2]}

    def test_zero_capacity_disables_the_tier(self, tmp_path):
        cache = ResultCache(str(tmp_path), hot_capacity=0)
        fp = fingerprint("table1", "tiny", False)
        cache.put(fp, {"v": 1})
        assert cache._hot == {}
        assert cache.get_many([fp]) == {fp: {"v": 1}}  # served from disk


class TestTmpSweep:
    def test_stale_tmp_swept_on_open(self, tmp_path):
        shard = tmp_path / "objects" / "ab"
        shard.mkdir(parents=True)
        (shard / "dead.tmp").write_text("debris", encoding="utf-8")
        cache = ResultCache(str(tmp_path), tmp_max_age_s=0.0)
        assert cache.swept_tmp == 1
        assert not (shard / "dead.tmp").exists()

    def test_young_tmp_survives_the_grace(self, tmp_path):
        shard = tmp_path / "objects" / "ab"
        shard.mkdir(parents=True)
        (shard / "live.tmp").write_text("mid-write", encoding="utf-8")
        cache = ResultCache(str(tmp_path), tmp_max_age_s=3600.0)
        assert cache.swept_tmp == 0
        assert (shard / "live.tmp").exists()


class TestMigrate:
    def test_flat_layout_round_trips(self, tmp_path):
        import shutil

        fp = fingerprint("table1", "tiny", False)
        donor = ResultCache(str(tmp_path / "donor"))
        stored = donor.put(fp, {"v": 7}, key_material={"experiment_id": "table1"})
        # Rebuild the entry as a legacy flat layout: objects/<fp>.json.
        legacy = tmp_path / "legacy"
        (legacy / "objects").mkdir(parents=True)
        shutil.copy(stored, legacy / "objects" / f"{fp}.json")

        cache = ResultCache(str(legacy))
        assert cache.get(fp) is None  # sharded path: not found yet
        assert cache.migrate() == 1
        assert cache.get(fp) == {"v": 7}
        assert cache.migrate() == 0  # idempotent

    def test_migrate_skips_non_fingerprint_files(self, tmp_path):
        (tmp_path / "objects").mkdir(parents=True)
        (tmp_path / "objects" / "notes.json").write_text("{}", encoding="utf-8")
        cache = ResultCache(str(tmp_path))
        assert cache.migrate() == 0
        assert (tmp_path / "objects" / "notes.json").exists()


class TestClearCoherence:
    """Regressions for the stale-state bugs: clear() must leave no trace
    of the deleted objects in the hot tier, the index, or the shard tree."""

    def test_clear_empties_the_hot_tier(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fp = fingerprint("table1", "tiny", False)
        cache.put(fp, {"v": 1})
        assert cache.get_many([fp]) == {fp: {"v": 1}}  # hot-tier served
        cache.clear()
        # Before the fix the hot tier kept serving the deleted payload.
        assert cache._hot == {}
        assert cache.get_many([fp]) == {}

    def test_clear_truncates_the_index(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for exp in ("table1", "figure2"):
            cache.put(fingerprint(exp, "tiny", False), {"v": 1.0})
        assert len(cache.index_entries()) == 2
        cache.clear()
        # Before the fix index.jsonl kept ghost lines for deleted objects.
        assert cache.index_entries() == []
        assert not cache.index_path.exists()

    def test_clear_removes_emptied_shard_dirs(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fps = [fingerprint(e, "tiny", False) for e in ("a", "b", "c")]
        for fp in fps:
            cache.put(fp, {})
        assert len(cache.shards()) >= 1
        cache.clear()
        assert cache.shards() == []
        assert cache.entries() == []
        assert cache.stats()["objects"] == 0
        assert cache.stats()["shards"] == 0

    def test_puts_after_clear_rebuild_cleanly(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fp = fingerprint("table1", "tiny", False)
        cache.put(fp, {"v": 1.0})
        cache.clear()
        cache.put(fp, {"v": 2.0})
        assert cache.get(fp) == {"v": 2.0}
        entries = cache.index_entries()
        assert len(entries) == 1
        assert entries[0]["headline"] == {"v": 2.0}


class TestMigrateIndexBackfill:
    def _legacy_cache(self, tmp_path, fp, payload, key):
        """A flat-layout cache dir with no index (predates index.jsonl)."""
        import shutil

        donor = ResultCache(str(tmp_path / "donor"))
        stored = donor.put(fp, payload, key_material=key)
        legacy = tmp_path / "legacy"
        (legacy / "objects").mkdir(parents=True)
        shutil.copy(stored, legacy / "objects" / f"{fp}.json")
        return legacy

    def test_migrate_backfills_one_index_line_per_moved_object(self, tmp_path):
        fp = fingerprint("table1", "tiny", False)
        legacy = self._legacy_cache(
            tmp_path, fp, {"phase_time": 2.5, "label": "x"},
            {"task_id": "alone:checkpoint"},
        )
        cache = ResultCache(str(legacy))
        assert cache.index_entries() == []  # legacy layout has no index
        assert cache.migrate() == 1
        # Before the fix the moved object never reached index.jsonl, so
        # index readers (and the lake) could not see migrated entries.
        entries = cache.index_entries()
        assert len(entries) == 1
        assert entries[0]["fingerprint"] == fp
        assert entries[0]["key"] == {"task_id": "alone:checkpoint"}
        assert entries[0]["headline"] == {"phase_time": 2.5}

    def test_backfill_keeps_the_original_store_time(self, tmp_path):
        fp = fingerprint("table1", "tiny", False)
        legacy = self._legacy_cache(tmp_path, fp, {"v": 1.0}, None)
        stored_at = json.loads(
            (legacy / "objects" / f"{fp}.json").read_text(encoding="utf-8")
        )["stored_at"]
        cache = ResultCache(str(legacy))
        cache.migrate()
        assert cache.index_entries()[0]["stored_at"] == stored_at

    def test_second_migrate_appends_nothing(self, tmp_path):
        fp = fingerprint("table1", "tiny", False)
        legacy = self._legacy_cache(tmp_path, fp, {"v": 1.0}, None)
        cache = ResultCache(str(legacy))
        cache.migrate()
        assert cache.migrate() == 0
        assert len(cache.index_entries()) == 1


class TestCompactIndex:
    def test_compact_dedupes_and_drops_ghosts(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        kept = fingerprint("table1", "tiny", False)
        doomed = fingerprint("figure2", "tiny", False)
        cache.put(kept, {"v": 1.0})
        cache.put(kept, {"v": 2.0})  # duplicate line
        cache.put(doomed, {"v": 3.0})
        cache._object_path(doomed).unlink()  # ghost: line without object
        stats = cache.compact_index()
        assert stats == {
            "entries": 1,
            "dropped_duplicates": 1,
            "dropped_ghosts": 1,
            "backfilled": 0,
            "unreadable": 0,
        }
        entries = cache.index_entries()
        assert [e["fingerprint"] for e in entries] == [kept]
        assert entries[0]["headline"] == {"v": 2.0}  # last occurrence won

    def test_compact_backfills_unindexed_objects(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fp = fingerprint("table1", "tiny", False)
        cache.put(fp, {"v": 1.0})
        cache.index_path.unlink()  # simulate a pre-index store
        stats = cache.compact_index()
        assert stats["backfilled"] == 1
        assert cache.index_entries()[0]["fingerprint"] == fp


class TestIndex:
    def test_puts_append_headline_lines(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fp = fingerprint("table1", "tiny", False)
        cache.put(
            fp,
            {"phase_time": 1.5, "n_steps": 30, "label": "x", "ok": True},
            key_material={"task_id": "alone:checkpoint"},
        )
        entries = cache.index_entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["fingerprint"] == fp
        assert entry["key"]["task_id"] == "alone:checkpoint"
        # Headline keeps numeric scalars only (bools and strings dropped).
        assert entry["headline"] == {"phase_time": 1.5, "n_steps": 30}

    def test_rewrites_append_and_last_occurrence_wins(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fp = fingerprint("table1", "tiny", False)
        cache.put(fp, {"v": 1.0})
        cache.put(fp, {"v": 2.0})
        entries = cache.index_entries()
        assert len(entries) == 2
        latest = {e["fingerprint"]: e for e in entries}
        assert latest[fp]["headline"] == {"v": 2.0}

    def test_corrupt_lines_are_skipped(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fp = fingerprint("table1", "tiny", False)
        cache.put(fp, {"v": 1.0})
        with open(cache.index_path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
        cache.put(fp, {"v": 2.0})
        assert len(cache.index_entries()) == 2

    def test_missing_index_is_empty(self, tmp_path):
        assert ResultCache(str(tmp_path)).index_entries() == []


    def test_corrupt_lines_are_counted(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fp = fingerprint("table1", "tiny", False)
        cache.put(fp, {"v": 1.0})
        with open(cache.index_path, "ab") as handle:
            handle.write(b"not json\n")
            handle.write(b"\xff\xfe binary garbage\n")
            handle.write(b'"a json string, not an object"\n')
        assert len(cache.index_entries()) == 1
        assert cache.index_corrupt_lines == 3
        # compact_index rewrites from objects/ and heals the corruption.
        cache.compact_index()
        assert len(cache.index_entries()) == 1
        assert cache.index_corrupt_lines == 0

    def test_undecodable_bytes_do_not_raise(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.index_path.write_bytes(b"\xff\xfe\x00\x01\n")
        assert cache.index_entries() == []
        assert cache.index_corrupt_lines == 1


def _racing_put(args):
    """Module-level worker for the concurrent-writer test (must pickle)."""
    cache_dir, fp, payload = args
    from repro.runner.cache import ResultCache

    cache = ResultCache(cache_dir)
    for _ in range(20):
        cache.put(fp, payload, {"task_id": "race"})
    return fp


class TestConcurrentWriters:
    def test_same_fingerprint_race_leaves_coherent_store(self, tmp_path):
        """Two processes hammering put() on one fingerprint cannot corrupt it.

        Same fingerprint means same task identity, which (deterministic
        simulation) means the same payload — the race is over *bytes*, not
        semantics.  Afterwards the object must parse, the index must dedup
        to one live entry, and the reconciled lake view must agree with a
        ground-truth rescan of objects/ (timestamps aside, which record
        whichever writer won).
        """
        import json as json_mod
        from concurrent.futures import ProcessPoolExecutor

        from repro.lake import load_lake, scan_lake

        fp = fingerprint("raced", "tiny", False)
        payload = {"phase_time": 1.25, "n_steps": 10}
        jobs = [(str(tmp_path), fp, payload)] * 2
        with ProcessPoolExecutor(max_workers=2) as pool:
            assert list(pool.map(_racing_put, jobs)) == [fp, fp]

        cache = ResultCache(str(tmp_path))
        assert cache.entries() == [fp]
        # The winning object is valid JSON with the expected payload.
        stored = json_mod.loads(cache._object_path(fp).read_text())
        assert stored["payload"] == payload
        # Every index line survived the concurrent appends intact.
        lines = cache.index_entries()
        assert cache.index_corrupt_lines == 0
        assert len(lines) == 40
        assert {line["fingerprint"] for line in lines} == {fp}
        # Reconciled view == ground-truth rescan, modulo stored_at (the
        # index line may record the losing writer's timestamp).
        view = load_lake(str(tmp_path))
        truth = scan_lake(str(tmp_path))
        strip = lambda e: {k: v for k, v in e.items() if k != "stored_at"}
        assert [strip(e) for e in view.entries] == [strip(e) for e in truth]
        assert view.ghosts == [] and view.unreadable == 0
        assert view.corrupt_lines == 0
