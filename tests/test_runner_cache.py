"""Tests for the content-addressed result cache."""

import json

import pytest

from repro._version import __version__
from repro.runner.cache import ResultCache, fingerprint


class TestFingerprint:
    def test_deterministic(self):
        assert fingerprint("table1", "tiny", True) == fingerprint("table1", "tiny", True)

    def test_is_sha256_hex(self):
        fp = fingerprint("table1", "tiny", False)
        assert len(fp) == 64
        int(fp, 16)  # parses as hex

    def test_every_ingredient_changes_the_fingerprint(self):
        base = fingerprint("table1", "tiny", False, overrides={}, version="1.0.0")
        assert fingerprint("figure2", "tiny", False, version="1.0.0") != base
        assert fingerprint("table1", "reduced", False, version="1.0.0") != base
        assert fingerprint("table1", "tiny", True, version="1.0.0") != base
        assert fingerprint("table1", "tiny", False, overrides={"seed": 1},
                           version="1.0.0") != base

    def test_version_bump_invalidates(self):
        old = fingerprint("table1", "tiny", False, version="1.0.0")
        new = fingerprint("table1", "tiny", False, version="1.0.1")
        assert old != new

    def test_default_version_is_package_version(self):
        assert fingerprint("table1", "tiny", False) == fingerprint(
            "table1", "tiny", False, version=__version__
        )

    def test_override_order_does_not_matter(self):
        a = fingerprint("t", "tiny", False, overrides={"a": 1, "b": 2})
        b = fingerprint("t", "tiny", False, overrides={"b": 2, "a": 1})
        assert a == b


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        fp = fingerprint("table1", "tiny", True)
        assert cache.get(fp) is None
        cache.put(fp, {"answer": 42})
        assert cache.get(fp) == {"answer": 42}
        assert cache.stats() == {"hits": 1, "misses": 1}

    def test_version_bump_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(fingerprint("table1", "tiny", False, version="1.0.0"), {"v": 1})
        assert cache.get(fingerprint("table1", "tiny", False, version="1.0.1")) is None

    def test_survives_across_instances(self, tmp_path):
        fp = fingerprint("table1", "tiny", False)
        ResultCache(str(tmp_path)).put(fp, {"persisted": True})
        assert ResultCache(str(tmp_path)).get(fp) == {"persisted": True}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fp = fingerprint("table1", "tiny", False)
        path = cache.put(fp, {"ok": 1})
        path.write_text("{ truncated", encoding="utf-8")
        assert cache.get(fp) is None

    def test_foreign_format_entry_is_a_miss(self, tmp_path):
        # Valid JSON but not our envelope (no "payload" key / wrong type).
        cache = ResultCache(str(tmp_path))
        fp = fingerprint("table1", "tiny", False)
        path = cache.put(fp, {"ok": 1})
        path.write_text('{"foo": 1}', encoding="utf-8")
        assert cache.get(fp) is None
        path.write_text('[1, 2, 3]', encoding="utf-8")
        assert cache.get(fp) is None

    def test_entries_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fps = [fingerprint(e, "tiny", False) for e in ("table1", "figure2")]
        for fp in fps:
            cache.put(fp, {})
        assert cache.entries() == sorted(fps)
        assert cache.contains(fps[0])
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_key_material_recorded(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fp = fingerprint("table1", "tiny", False)
        path = cache.put(fp, {"x": 1}, key_material={"experiment_id": "table1"})
        entry = json.loads(path.read_text(encoding="utf-8"))
        assert entry["key"]["experiment_id"] == "table1"
        assert entry["fingerprint"] == fp
