"""Tests for the table export helpers (CSV / markdown / JSON)."""

import json

import pytest

from repro.analysis.tables import (
    rows_to_csv,
    rows_to_markdown,
    summary_to_json,
    sweep_to_csv,
)
from repro.core.delta import DeltaPoint, DeltaSweep
from repro.errors import AnalysisError


ROWS = [
    {"device": "HDD", "slowdown": 2.49, "flat": False},
    {"device": "SSD", "slowdown": 1.96, "flat": False},
    {"device": "RAM", "slowdown": 1.58, "flat": True},
]


class TestCsv:
    def test_header_follows_first_appearance_order(self):
        text = rows_to_csv(ROWS)
        assert text.splitlines()[0] == "device,slowdown,flat"

    def test_explicit_columns_subset(self):
        text = rows_to_csv(ROWS, columns=["device"])
        assert text.splitlines()[1] == "HDD"

    def test_missing_keys_render_empty(self):
        text = rows_to_csv([{"a": 1}, {"b": 2}])
        lines = text.splitlines()
        assert lines[0] == "a,b"
        assert lines[2] == ",2"

    def test_zero_rows_rejected(self):
        with pytest.raises(AnalysisError):
            rows_to_csv([])


class TestMarkdown:
    def test_structure(self):
        text = rows_to_markdown(ROWS)
        lines = text.splitlines()
        assert lines[0] == "| device | slowdown | flat |"
        assert set(lines[1].replace("|", "").split()) == {"---"}
        assert len(lines) == 2 + len(ROWS)

    def test_booleans_render_as_yes_no(self):
        text = rows_to_markdown(ROWS)
        assert "| yes |" in text and "| no |" in text

    def test_floats_render_compactly(self):
        text = rows_to_markdown([{"x": 1234.5678, "y": 0.123456, "z": float("nan")}])
        row = text.splitlines()[-1]
        assert "1235" in row or "1234" in row
        assert "0.123" in row
        assert row.endswith("|  |") or "|  |" in row  # NaN renders empty

    def test_explicit_columns(self):
        text = rows_to_markdown(ROWS, columns=["slowdown", "device"])
        assert text.splitlines()[0] == "| slowdown | device |"

    def test_zero_rows_rejected(self):
        with pytest.raises(AnalysisError):
            rows_to_markdown([])


class TestSweepCsvAndJson:
    def test_sweep_to_csv_has_one_row_per_point(self):
        points = [
            DeltaPoint(delta=d, write_times={"A": 2.0, "B": 2.5},
                       throughputs={"A": 1.0, "B": 0.8},
                       window_collapses={"A": 0, "B": 0}, simulated_time=3.0)
            for d in (-1.0, 0.0, 1.0)
        ]
        sweep = DeltaSweep(points=points, alone_times={"A": 2.0, "B": 2.0})
        text = sweep_to_csv(sweep)
        assert len(text.strip().splitlines()) == 1 + 3
        assert "interference_factor.A" in text.splitlines()[0]

    def test_summary_to_json_round_trip(self):
        payload = {"peak": 2.0, "label": 1}
        decoded = json.loads(summary_to_json(payload))
        assert decoded == {"peak": 2.0, "label": 1}
