"""Tests of the ``matrix`` subcommand and the unified CLI validation errors."""

import json

import pytest

from repro.cli import (
    build_parser,
    main,
    validate_archetypes,
    validate_jobs,
    validate_step_tolerance,
    validate_sweep_points,
)
from repro.errors import UsageError
from repro.runner.store import verify_manifest


def run_matrix(tmp_path, *extra):
    output = tmp_path / "EXPERIMENTS.md"
    argv = [
        "matrix", "--archetypes", "checkpoint,analytics",
        "--output", str(output),
        "--store", str(tmp_path / "runs"),
        "--cache-dir", str(tmp_path / "cache"),
        *extra,
    ]
    assert main(argv) == 0
    return output


class TestMatrixCommand:
    def test_tiny_matrix_end_to_end(self, tmp_path, capsys):
        """The acceptance path: heatmap in the report + valid matrix.json."""
        output = run_matrix(tmp_path, "--jobs", "2")
        text = output.read_text(encoding="utf-8")
        assert "Interference matrix" in text
        assert "| checkpoint |" in text

        runs = sorted((tmp_path / "runs").iterdir())
        assert len(runs) == 1
        ok, issues = verify_manifest(runs[0])
        assert ok, issues
        with open(runs[0] / "matrix.json", "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["names"] == ["checkpoint", "analytics"]
        assert len(document["cells"]) == 3

    def test_warm_cache_rerun_is_byte_identical(self, tmp_path, capsys):
        output = run_matrix(tmp_path)
        capsys.readouterr()
        first_report = output.read_bytes()
        runs = sorted((tmp_path / "runs").iterdir())
        first_manifest = (runs[0] / "manifest.json").read_bytes()
        first_json = (runs[0] / "matrix.json").read_bytes()

        run_matrix(tmp_path)
        err = capsys.readouterr().err
        assert "origin=cached" in err
        assert "origin=ran" not in err  # 100% cache hit
        assert output.read_bytes() == first_report
        assert (runs[0] / "manifest.json").read_bytes() == first_manifest
        assert (runs[0] / "matrix.json").read_bytes() == first_json

    def test_csv_output(self, tmp_path, capsys):
        run_matrix(tmp_path, "--csv")
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        assert header.startswith("victim,aggressor,slowdown")
        assert len(out.splitlines()) == 1 + 4  # header + NxN ordered rows

    def test_no_output_prints_report(self, tmp_path, capsys):
        argv = [
            "matrix", "--archetypes", "checkpoint,analytics",
            "--no-output", "--no-store", "--no-cache",
        ]
        assert main(argv) == 0
        assert "Interference matrix" in capsys.readouterr().out

    def test_adaptive_stepping_accepted(self, tmp_path):
        output = run_matrix(
            tmp_path, "--stepping", "adaptive", "--step-tolerance", "0.1"
        )
        assert "Interference matrix" in output.read_text(encoding="utf-8")


class TestValidators:
    """The shared validators raise UsageError naming the current flag."""

    def test_sweep_points_names_the_flag(self):
        with pytest.raises(UsageError, match=r"--points"):
            validate_sweep_points("2")
        with pytest.raises(UsageError, match=r"--points"):
            validate_sweep_points("many")
        assert validate_sweep_points("5") == 5

    def test_jobs_names_the_flag(self):
        with pytest.raises(UsageError, match=r"--jobs"):
            validate_jobs("0")
        with pytest.raises(UsageError, match=r"--jobs"):
            validate_jobs("4.5")
        assert validate_jobs("4") == 4

    def test_step_tolerance_names_the_flag(self):
        with pytest.raises(UsageError, match=r"--step-tolerance"):
            validate_step_tolerance("0")
        with pytest.raises(UsageError, match=r"--step-tolerance"):
            validate_step_tolerance("soon")
        assert validate_step_tolerance("0.5") == 0.5

    def test_archetypes_names_the_flag(self):
        with pytest.raises(UsageError, match=r"--archetypes"):
            validate_archetypes("checkpoint")
        with pytest.raises(UsageError, match=r"--archetypes"):
            validate_archetypes("checkpoint,warpdrive")
        with pytest.raises(UsageError, match=r"--archetypes"):
            validate_archetypes("checkpoint,checkpoint")
        assert validate_archetypes("Checkpoint, analytics") == [
            "checkpoint", "analytics"
        ]


BAD_ARGVS = [
    # sweep
    ["sweep", "--points", "2"],
    ["sweep", "--points", "nine"],
    ["sweep", "--jobs", "0"],
    ["sweep", "--jobs", "two"],
    ["sweep", "--stepping", "sometimes"],
    ["sweep", "--stepping", "adaptive", "--step-tolerance", "1.5"],
    ["sweep", "--step-tolerance", "0.1"],
    ["sweep", "--device", "hdd", "--sync", "maybe"],
    # campaign
    ["campaign", "--jobs", "-1"],
    ["campaign", "--scale", "galactic"],
    ["campaign", "--stepping", "adaptive", "--step-tolerance", "0"],
    ["campaign", "--step-tolerance", "0.1"],
    # matrix
    ["matrix"],
    ["matrix", "--archetypes", "checkpoint"],
    ["matrix", "--archetypes", "checkpoint,warpdrive"],
    ["matrix", "--archetypes", "checkpoint,checkpoint"],
    ["matrix", "--archetypes", "checkpoint,analytics", "--jobs", "0"],
    ["matrix", "--archetypes", "checkpoint,analytics", "--scale", "huge"],
    ["matrix", "--archetypes", "checkpoint,analytics", "--step-tolerance", "0.1"],
    ["matrix", "--archetypes", "checkpoint,analytics", "--delay", "soon"],
]


class TestBadArgumentExitCodes:
    """Every bad-argument path exits with argparse's uniform code 2."""

    @pytest.mark.parametrize(
        "argv", BAD_ARGVS, ids=[" ".join(a) for a in BAD_ARGVS]
    )
    def test_exit_code_is_2(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert capsys.readouterr().err  # a diagnostic reached stderr

    def test_messages_name_current_flags(self, capsys):
        cases = {
            ("sweep", "--points", "2"): "--points",
            ("sweep", "--jobs", "0"): "--jobs",
            ("matrix", "--archetypes", "checkpoint"): "--archetypes",
            ("campaign", "--stepping", "adaptive", "--step-tolerance", "2"):
                "--step-tolerance",
        }
        for argv, flag in cases.items():
            with pytest.raises(SystemExit):
                main(list(argv))
            assert flag in capsys.readouterr().err

    def test_parser_help_lists_matrix(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--help"])
        assert excinfo.value.code == 0
        assert "matrix" in capsys.readouterr().out


class TestFaultToleranceCli:
    def test_task_timeout_validator(self, capsys):
        with pytest.raises(SystemExit):
            main(["matrix", "--archetypes", "checkpoint,analytics",
                  "--task-timeout", "0"])
        assert "--task-timeout" in capsys.readouterr().err

    def test_max_retries_validator(self, capsys):
        with pytest.raises(SystemExit):
            main(["matrix", "--archetypes", "checkpoint,analytics",
                  "--max-retries", "-1"])
        assert "--max-retries" in capsys.readouterr().err

    def test_resume_conflicts_with_no_cache(self, capsys):
        with pytest.raises(SystemExit):
            main(["matrix", "--archetypes", "checkpoint,analytics",
                  "--resume", "--no-cache"])
        assert "--resume" in capsys.readouterr().err

    def test_journal_written_and_resume_accepted(self, tmp_path, capsys):
        run_matrix(tmp_path)
        runs = sorted((tmp_path / "runs").iterdir())
        assert (runs[0] / "progress.jsonl").is_file()
        # The journal is bookkeeping, not a manifest artifact — verification
        # of the run directory still passes with it present.
        ok, issues = verify_manifest(runs[0])
        assert ok, issues
        capsys.readouterr()
        run_matrix(tmp_path, "--resume")

    def test_poisoned_task_quarantines_with_exit_one(self, tmp_path, capsys,
                                                     monkeypatch):
        from repro.runner.chaos import CHAOS_ENV_VAR, FaultPlan, FaultSpec

        plan = FaultPlan.of(
            FaultSpec(match="pair:checkpoint+analytics", times=99)
        )
        monkeypatch.setenv(CHAOS_ENV_VAR, plan.to_json())
        output = tmp_path / "EXPERIMENTS.md"
        argv = [
            "matrix", "--archetypes", "checkpoint,analytics",
            "--output", str(output),
            "--store", str(tmp_path / "runs"),
            "--cache-dir", str(tmp_path / "cache"),
            "--max-retries", "1",
        ]
        assert main(argv) == 1  # quarantine: degraded, not aborted
        runs = sorted((tmp_path / "runs").iterdir())
        with open(runs[0] / "matrix.json", "r", encoding="utf-8") as handle:
            document = json.load(handle)
        failed = {f["task_id"] for f in document["failed_tasks"]}
        assert failed == {"pair:checkpoint+analytics"}
        # The alone baselines still completed; only the poisoned cell is gone.
        assert set(document["alone"]) == {"checkpoint", "analytics"}
        assert "checkpoint+analytics" not in document["cells"]
        text = output.read_text(encoding="utf-8")
        assert "Failed tasks (quarantined)" in text
        assert "—" in text  # the missing cell renders as a dash

    def test_recovered_rerun_matches_a_clean_run_byte_for_byte(
        self, tmp_path, capsys, monkeypatch
    ):
        """The acceptance property: chaos must not leave a scar.

        A campaign that quarantined a poisoned task, re-run without chaos
        over the same cache, produces a matrix.json byte-identical to a
        clean campaign that never saw a fault.
        """
        from repro.runner.chaos import CHAOS_ENV_VAR, FaultPlan, FaultSpec

        plan = FaultPlan.of(
            FaultSpec(match="pair:checkpoint+analytics", times=99)
        )
        monkeypatch.setenv(CHAOS_ENV_VAR, plan.to_json())
        argv_chaos = [
            "matrix", "--archetypes", "checkpoint,analytics",
            "--output", str(tmp_path / "chaos.md"),
            "--store", str(tmp_path / "runs"),
            "--cache-dir", str(tmp_path / "cache"),
            "--max-retries", "0",
        ]
        assert main(argv_chaos) == 1
        monkeypatch.delenv(CHAOS_ENV_VAR)
        assert main(argv_chaos) == 0  # retry heals over the warm cache

        clean_argv = [
            "matrix", "--archetypes", "checkpoint,analytics",
            "--output", str(tmp_path / "clean.md"),
            "--store", str(tmp_path / "runs_clean"),
            "--cache-dir", str(tmp_path / "cache_clean"),
        ]
        assert main(clean_argv) == 0

        recovered = sorted((tmp_path / "runs").iterdir())[0]
        clean = sorted((tmp_path / "runs_clean").iterdir())[0]
        assert (recovered / "matrix.json").read_bytes() == \
            (clean / "matrix.json").read_bytes()

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        import repro.cli as cli_module

        def interrupted(args, parser):
            raise KeyboardInterrupt()

        monkeypatch.setattr(cli_module, "_dispatch", interrupted)
        assert main(["matrix", "--archetypes", "checkpoint,analytics"]) == 130
        err = capsys.readouterr().err
        assert "--resume" in err

    def test_keyboard_interrupt_hint_scoped_to_resumable_commands(
        self, capsys, monkeypatch
    ):
        import repro.cli as cli_module

        def interrupted(args, parser):
            raise KeyboardInterrupt()

        monkeypatch.setattr(cli_module, "_dispatch", interrupted)
        # lake has no cache/journal resume semantics — no misleading hint.
        assert main(["lake", "stats"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" not in err
