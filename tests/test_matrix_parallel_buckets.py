"""Bucket-granular parallel dispatch: the executor contract.

With ``jobs > 1`` the matrix submits each planned bucket as a single pool
work unit (kind ``matrix-bucket``), so N workers advance N batched kernels
concurrently.  The contract: the parallel batched route is byte-identical
to the serial batched route and to the scalar route, buckets are submitted
and reassembled in plan order, and the telemetry that crosses the process
boundary counts every member exactly once (bucket work units are spans of
their own category, never ``task`` spans).
"""

import json

from repro.obs.summary import batch_stats, executor_stats
from repro.obs.telemetry import telemetry_session
from repro.scenarios.matrix import run_interference_matrix

#: Two cadence-distinct archetypes: 5 tasks in >1 buckets, so jobs=2
#: actually takes the bucket-dispatch path (it needs multiple buckets).
ARCHETYPES = ["checkpoint", "analytics"]


def _matrix_dict(**kwargs):
    matrix = run_interference_matrix(ARCHETYPES, "tiny", **kwargs)
    return json.dumps(matrix.to_dict(), sort_keys=True)


class TestBucketParallelContract:
    def test_jobs2_batched_byte_identical_to_serial_and_scalar(self):
        serial_batched = _matrix_dict(jobs=1, batch=True)
        serial_scalar = _matrix_dict(jobs=1, batch=False)
        parallel_batched = _matrix_dict(jobs=2, batch=True)
        assert parallel_batched == serial_batched
        assert parallel_batched == serial_scalar

    def test_jobs2_counts_every_member_exactly_once(self):
        with telemetry_session("bucket-parallel") as telemetry:
            run_interference_matrix(ARCHETYPES, "tiny", jobs=2, batch=True)
            document = telemetry.snapshot()
        ex = executor_stats(document)
        bt = batch_stats(document)
        # 2 alone + 3 pair tasks; every one executed once, none double
        # counted by the bucket work units that carried them.
        assert ex["executed"] == 5
        assert ex["n_tasks"] == 5
        assert bt["member_runs"] == 5
        assert bt["fallbacks"] == 0
        bucket_spans = [
            s for s in document["spans"] if s["category"] == "bucket"
        ]
        assert bucket_spans, "jobs=2 must submit bucket work units to the pool"
