"""Tests for Δ-graph sweeps and the two-application experiment wrapper."""

import pytest

from repro.config.presets import make_scenario
from repro.core.delta import DeltaPoint, DeltaSweep, default_deltas, run_delta_sweep
from repro.core.experiment import TwoApplicationExperiment
from repro.errors import AnalysisError, ExperimentError


def make_synthetic_sweep():
    """A hand-built sweep with a known shape (no simulation)."""
    alone = {"A": 10.0, "B": 10.0}
    points = []
    for delta, t_a, t_b in [
        (-10.0, 10.0, 10.0),
        (-5.0, 15.0, 17.0),
        (0.0, 20.0, 20.0),
        (5.0, 17.0, 15.0),
        (10.0, 10.0, 10.0),
    ]:
        points.append(
            DeltaPoint(
                delta=delta,
                write_times={"A": t_a, "B": t_b},
                throughputs={"A": 1.0, "B": 1.0},
                window_collapses={"A": 0, "B": 0},
                simulated_time=max(t_a, t_b),
            )
        )
    return DeltaSweep(points=points, alone_times=alone, label="synthetic")


class TestDeltaSweepMetrics:
    def test_accessors(self):
        sweep = make_synthetic_sweep()
        assert sweep.applications == ("A", "B")
        assert sweep.deltas.tolist() == [-10.0, -5.0, 0.0, 5.0, 10.0]
        assert sweep.write_times("A").tolist() == [10.0, 15.0, 20.0, 17.0, 10.0]
        assert sweep.alone_time("A") == 10.0
        assert sweep.interference_factors("A").max() == 2.0

    def test_peak_and_flatness(self):
        sweep = make_synthetic_sweep()
        assert sweep.peak_interference_factor() == 2.0
        assert sweep.flatness_index() == pytest.approx(1.0)
        assert not sweep.is_flat()

    def test_asymmetry_positive_for_second_app_penalty(self):
        sweep = make_synthetic_sweep()
        # At dt=-5 B starts first and A=15 < B=17?? -> B is first so first=B=17, second=A=15
        # At dt=+5 A first: first=A=17, second=B=15 ... so the synthetic sweep
        # actually favours the *second* application; asymmetry must be negative.
        assert sweep.asymmetry_index() < 0

    def test_point_helpers(self):
        sweep = make_synthetic_sweep()
        point = sweep.point_at(0.4)
        assert point.delta == 0.0
        assert point.first_application() == "A"
        assert point.second_application() == "B"
        neg = sweep.point_at(-5.0)
        assert neg.first_application() == "B"
        assert neg.second_application() == "A"

    def test_rows_and_summary(self):
        sweep = make_synthetic_sweep()
        rows = sweep.rows()
        assert len(rows) == 5
        assert rows[2]["interference_factor.A"] == 2.0
        summary = sweep.summary()
        assert summary["peak_interference_factor"] == 2.0
        assert "alone_time.A" in summary

    def test_unknown_app_raises(self):
        sweep = make_synthetic_sweep()
        with pytest.raises(AnalysisError):
            sweep.write_times("Z")
        with pytest.raises(AnalysisError):
            sweep.alone_time("Z")


class TestDefaultDeltas:
    def test_symmetric_and_includes_zero(self):
        deltas = default_deltas(10.0, n_points=9)
        assert len(deltas) == 9
        assert 0.0 in deltas
        assert deltas[0] == -deltas[-1]

    def test_even_point_count_promoted_to_odd(self):
        assert len(default_deltas(10.0, n_points=4)) == 5

    def test_validation(self):
        with pytest.raises(ExperimentError):
            default_deltas(0.0)
        with pytest.raises(ExperimentError):
            default_deltas(10.0, n_points=2)


class TestRunDeltaSweep:
    def test_tiny_sweep_end_to_end(self):
        scenario = make_scenario("tiny", device="hdd", sync_mode="sync-on")
        sweep = run_delta_sweep(scenario, deltas=[-0.2, 0.0, 0.2], label="tiny test")
        assert len(sweep.points) == 3
        assert sweep.peak_interference_factor() > 1.3
        assert sweep.label == "tiny test"
        # The delta points are sorted ascending.
        assert list(sweep.deltas) == sorted(sweep.deltas)

    def test_progress_callback(self):
        scenario = make_scenario("tiny", device="ram", sync_mode="sync-off")
        seen = []
        run_delta_sweep(scenario, deltas=[0.0], progress=lambda d, r: seen.append(d))
        assert seen == [0.0]

    def test_single_app_scenario_rejected(self):
        scenario = make_scenario("tiny")
        alone = scenario.with_applications(scenario.applications[:1])
        with pytest.raises(ExperimentError):
            run_delta_sweep(alone, deltas=[0.0])


class TestTwoApplicationExperiment:
    def test_baseline_and_sweep(self):
        exp = TwoApplicationExperiment("tiny", device="hdd", sync_mode="sync-on")
        alone = exp.alone_time()
        assert alone > 0
        deltas = exp.pick_deltas(n_points=3)
        assert len(deltas) == 3
        sweep = exp.run_sweep(deltas=[0.0])
        assert sweep.peak_interference_factor() > 1.0
        metrics = exp.headline_metrics(deltas=[0.0])
        assert "peak_interference_factor" in metrics
        assert "alone_time" in metrics

    def test_describe(self):
        exp = TwoApplicationExperiment("tiny")
        assert "scenario" in exp.describe()

    def test_prebuilt_scenario(self):
        scenario = make_scenario("tiny", device="ram", sync_mode="sync-off")
        exp = TwoApplicationExperiment(scenario=scenario)
        assert exp.scenario is scenario
        with pytest.raises(ExperimentError):
            TwoApplicationExperiment(
                scenario=scenario.with_applications(scenario.applications[:1])
            )
