"""Batched-kernel equivalence, bucketing properties, and telemetry neutrality.

The batched lockstep kernel (:mod:`repro.model.batch`) promises *bitwise*
equality with the scalar kernel: a B=1 batch reproduces every stored golden
fingerprint, and every member of a B>1 batch reproduces the fingerprint of
running it alone.  The bucketing front end must partition any scenario list
(each scenario in exactly one bucket or the fallback), group only same-shape
scenarios, and route ragged/adaptive/singleton scenarios to the scalar path.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.config.control import SteppingMode, SteppingPolicy
from repro.model.batch import (
    BatchSimulator,
    _shape_of,
    plan_buckets,
    simulate_many,
)
from repro.model.simulator import simulate_scenario
from repro.obs.telemetry import telemetry_session
from repro.scenarios.archetypes import archetype_names
from repro.scenarios.spec import ScenarioSpec, build_scenario

from tests._golden_utils import golden_cases, load_goldens, metric_fingerprint

ARCHETYPES = archetype_names()

#: Archetypes whose tiny alone-scenarios share one deployment shape *and*
#: one resolved step (they bucket together).
SAME_SHAPE = ("smallfile", "randomread", "staggered", "incast")


def _alone_scenario(archetype):
    return build_scenario([archetype], "tiny").scenario


# ---------------------------------------------------------------------- #
# Golden equivalence at B=1
# ---------------------------------------------------------------------- #


class TestGoldenEquivalenceB1:
    """A single-member batch is byte-identical to the scalar kernel."""

    @pytest.mark.parametrize("name", sorted(golden_cases()))
    def test_b1_matches_golden(self, name):
        factory = golden_cases()[name]
        stored = load_goldens()[name]
        results = BatchSimulator([factory()]).run()
        digest, payload = metric_fingerprint(results[0])
        assert digest == stored["fingerprint"], (
            f"batched B=1 fingerprint of {name} diverged from the golden"
        )


# ---------------------------------------------------------------------- #
# B>1 equivalence with running each member alone
# ---------------------------------------------------------------------- #


class TestBatchVsAlone:
    def test_mixed_bucket_matches_alone(self):
        scenarios = [_alone_scenario(a) for a in SAME_SHAPE]
        buckets, fallback = plan_buckets(scenarios)
        assert len(buckets) == 1 and not fallback
        assert sorted(buckets[0].indices) == [0, 1, 2, 3]
        batched = simulate_many(scenarios)
        for archetype, scenario, result in zip(SAME_SHAPE, scenarios, batched):
            alone = simulate_scenario(scenario)
            assert metric_fingerprint(result)[0] == metric_fingerprint(alone)[0], (
                f"batched result of {archetype} diverged from its alone run"
            )

    def test_duplicate_members_match_alone(self):
        scenarios = [_alone_scenario("checkpoint") for _ in range(4)]
        results = BatchSimulator(scenarios).run()
        alone_digest = metric_fingerprint(simulate_scenario(scenarios[0]))[0]
        digests = {metric_fingerprint(r)[0] for r in results}
        assert digests == {alone_digest}

    def test_results_come_back_in_input_order(self):
        # checkpoint/streaming share a shape; analytics falls back scalar.
        names = ("checkpoint", "analytics", "streaming")
        scenarios = [_alone_scenario(a) for a in names]
        results = simulate_many(scenarios)
        for name, result in zip(names, results):
            assert name in result.scenario.applications[0].name

    def test_fingerprints_stable_across_paths(self):
        """The two execution paths yield byte-identical result payloads, so
        cached values keyed by the task fingerprint are interchangeable."""
        scenario = _alone_scenario("smallfile")
        alone = metric_fingerprint(simulate_scenario(scenario))
        batched = metric_fingerprint(
            simulate_many([scenario, _alone_scenario("randomread")])[0]
        )
        assert alone[0] == batched[0]
        assert alone[1] == batched[1]


# ---------------------------------------------------------------------- #
# Bucketing properties
# ---------------------------------------------------------------------- #


class TestBucketing:
    @given(
        names=st.lists(st.sampled_from(ARCHETYPES), min_size=1, max_size=6),
        min_batch=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_partition(self, names, min_batch):
        """Every scenario lands in exactly one bucket or the fallback, and
        bucket members share a deployment shape."""
        scenarios = [_alone_scenario(a) for a in names]
        buckets, fallback = plan_buckets(scenarios, min_batch=min_batch)
        seen = sorted(
            [i for b in buckets for i in b.indices] + [i for i, _ in fallback]
        )
        assert seen == list(range(len(scenarios)))
        for bucket in buckets:
            assert len(bucket.indices) >= min_batch
            shapes = {_shape_of(scenarios[i]) for i in bucket.indices}
            assert shapes == {bucket.shape}

    def test_ragged_specs_bucket_together(self):
        scenario = _alone_scenario("checkpoint")
        app = scenario.applications[0]
        ragged = dataclasses.replace(
            scenario,
            applications=(dataclasses.replace(app, target_servers=(0, 1)),),
        )
        assert _shape_of(ragged) is not None
        buckets, fallback = plan_buckets([ragged, ragged])
        assert not fallback
        assert [b.indices for b in buckets] == [[0, 1]]

    def test_mixed_width_specs_share_a_bucket(self):
        """Different connection counts / group sizes no longer split buckets
        as long as the lockstep cadence and platform/filesystem match."""
        scenario = _alone_scenario("checkpoint")
        app = scenario.applications[0]
        ragged = dataclasses.replace(
            scenario,
            applications=(dataclasses.replace(app, target_servers=(0, 1)),),
        )
        buckets, fallback = plan_buckets([scenario, ragged])
        assert not fallback
        assert [b.indices for b in buckets] == [[0, 1]]

    def test_adaptive_stepping_falls_back(self):
        policy = SteppingPolicy(mode=SteppingMode.ADAPTIVE)
        scenario = build_scenario(["checkpoint"], "tiny", stepping=policy).scenario
        buckets, fallback = plan_buckets([scenario, scenario])
        assert not buckets
        assert {reason for _, reason in fallback} == {"adaptive"}

    def test_singletons_fall_back(self):
        # analytics has a different shape than checkpoint: no pairing.
        scenarios = [_alone_scenario("checkpoint"), _alone_scenario("analytics")]
        buckets, fallback = plan_buckets(scenarios)
        assert not buckets
        assert {reason for _, reason in fallback} == {"singleton"}


# ---------------------------------------------------------------------- #
# Hypothesis: batched == scalar across the archetype space
# ---------------------------------------------------------------------- #


def _small_spec(archetype):
    return ScenarioSpec(
        archetype=archetype,
        nodes=1,
        procs_per_node=2,
        bytes_per_process=512 * units.KiB,
    )


class TestBatchedVsScalarHypothesis:
    @given(names=st.lists(st.sampled_from(ARCHETYPES), min_size=2, max_size=3))
    @settings(max_examples=8, deadline=None)
    def test_batched_matches_scalar(self, names):
        scenarios = [
            build_scenario([_small_spec(a)], "tiny").scenario for a in names
        ]
        batched = simulate_many(scenarios)
        for scenario, result in zip(scenarios, batched):
            alone = simulate_scenario(scenario)
            assert metric_fingerprint(result)[0] == metric_fingerprint(alone)[0]


# ---------------------------------------------------------------------- #
# Telemetry neutrality
# ---------------------------------------------------------------------- #


class TestBatchTelemetry:
    def test_batching_is_telemetry_neutral(self):
        scenarios = [_alone_scenario(a) for a in ("smallfile", "incast")]
        plain = [metric_fingerprint(r)[0] for r in simulate_many(scenarios)]
        with telemetry_session("batch-test") as telemetry:
            observed = [metric_fingerprint(r)[0] for r in simulate_many(scenarios)]
            snapshot = telemetry.snapshot()
        assert plain == observed
        assert snapshot["counters"]["batch.buckets"] == 1
        assert snapshot["counters"]["batch.member_runs"] == 2
        assert "batch.occupancy" in snapshot["histograms"]

    def test_fallback_counters(self):
        scenarios = [_alone_scenario("checkpoint"), _alone_scenario("analytics")]
        with telemetry_session("batch-test") as telemetry:
            simulate_many(scenarios)
            snapshot = telemetry.snapshot()
        assert snapshot["counters"]["batch.ragged_fallbacks"] == 2
        assert snapshot["counters"]["batch.fallback.singleton"] == 2
        assert "batch.buckets" not in snapshot["counters"]


# ---------------------------------------------------------------------- #
# Executor and matrix wiring
# ---------------------------------------------------------------------- #


class TestExecutorBatchRunner:
    def _tasks(self, monkeypatch, log):
        from repro.runner import executor

        def worker(payload, seed):
            log.append(payload["n"])
            return {"n": payload["n"], "via": "scalar"}

        monkeypatch.setitem(executor._TASK_KINDS, "test-batch", worker)
        return [
            executor.TaskSpec(f"t{n}", "test-batch", {"n": n}) for n in range(4)
        ]

    def test_claimed_tasks_skip_the_pool(self, monkeypatch):
        from repro.runner.executor import execute_cached

        scalar_log = []
        tasks = self._tasks(monkeypatch, scalar_log)

        def batch_runner(pending):
            # Claim the even tasks; the executor must run only the rest.
            return {
                t.task_id: {"n": t.payload["n"], "via": "batched"}
                for t in pending
                if t.payload["n"] % 2 == 0
            }

        results = execute_cached(tasks, batch_runner=batch_runner)
        assert {k: v["via"] for k, v in results.items()} == {
            "t0": "batched", "t1": "scalar", "t2": "batched", "t3": "scalar",
        }
        assert scalar_log == [1, 3]

    def test_declining_runner_changes_nothing(self, monkeypatch):
        from repro.runner.executor import execute_cached

        scalar_log = []
        tasks = self._tasks(monkeypatch, scalar_log)
        results = execute_cached(tasks, batch_runner=lambda pending: None)
        assert scalar_log == [0, 1, 2, 3]
        assert all(v["via"] == "scalar" for v in results.values())

    def test_batched_payloads_are_cached(self, monkeypatch, tmp_path):
        from repro.runner.cache import ResultCache
        from repro.runner.executor import execute_cached

        scalar_log = []
        tasks = self._tasks(monkeypatch, scalar_log)
        cache = ResultCache(str(tmp_path))
        calls = []

        def batch_runner(pending):
            calls.append([t.task_id for t in pending])
            return {t.task_id: {"n": t.payload["n"], "via": "batched"} for t in pending}

        fingerprint_for = lambda task: f"fp-{task.task_id}"
        cold = execute_cached(
            tasks, cache=cache, fingerprint_for=fingerprint_for,
            batch_runner=batch_runner,
        )
        warm = execute_cached(
            tasks, cache=cache, fingerprint_for=fingerprint_for,
            batch_runner=batch_runner,
        )
        assert warm == cold
        assert scalar_log == []
        # The warm pass is a 100% cache hit: the runner never fires again.
        assert calls == [["t0", "t1", "t2", "t3"]]


class TestMatrixBatching:
    ARCH = ["smallfile", "incast"]

    def test_batched_matrix_matches_scalar(self):
        import json

        from repro.scenarios.matrix import run_interference_matrix

        with telemetry_session("matrix-batched") as telemetry:
            batched = run_interference_matrix(self.ARCH, "tiny", batch=True)
            snapshot = telemetry.snapshot()
        scalar = run_interference_matrix(self.ARCH, "tiny", batch=False)
        dump = lambda m: json.dumps(m.to_dict(), indent=2, sort_keys=True)
        assert dump(batched) == dump(scalar)
        # All 5 runs (2 alone + 3 pairs) share one lockstep cadence and pad
        # their mixed widths into a single bucket.
        assert snapshot["counters"]["batch.buckets"] == 1
        assert snapshot["counters"]["batch.member_runs"] == 5
        assert snapshot["counters"]["executor.tasks.completed"] == 5
        batched_tasks = [
            t for t, r in batched.task_records.items() if r.get("batched")
        ]
        assert len(batched_tasks) == 5

    def test_jobs_gt_one_keeps_batching(self):
        """The batch runner is wired for every jobs value and forwards the
        jobs count so buckets fan out as pool work units."""
        from repro.scenarios import matrix as matrix_mod

        seen = {}

        def spy(pending, task_records=None, *, jobs=1,
                fault_policy=None):  # pragma: no cover
            seen["jobs"] = jobs
            seen["fault_policy"] = fault_policy
            return {}

        import unittest.mock as mock

        with mock.patch.object(
            matrix_mod, "run_matrix_tasks_batched", spy
        ), mock.patch.object(matrix_mod, "execute_cached") as fake:
            fake.return_value = {}
            try:
                matrix_mod.run_interference_matrix(self.ARCH, "tiny", jobs=2)
            except Exception:
                pass  # assembly fails on empty results; wiring already seen
            runner = fake.call_args.kwargs["batch_runner"]
            assert runner is not None
            runner([])
            assert seen["jobs"] == 2

    def test_batcher_declines_small_or_foreign_task_lists(self):
        from repro.runner.executor import TaskSpec
        from repro.scenarios.matrix import run_matrix_tasks_batched

        assert run_matrix_tasks_batched([]) == {}
        foreign = [TaskSpec("x", "experiment", {}), TaskSpec("y", "experiment", {})]
        assert run_matrix_tasks_batched(foreign) == {}
