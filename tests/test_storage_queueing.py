"""Tests for the device-queue accounting wrapper."""

import pytest

from repro import units
from repro.errors import SimulationError
from repro.storage import device_by_name
from repro.storage.queueing import DeviceQueue


class TestEnqueueDrain:
    def test_drain_is_bounded_by_device_bandwidth(self):
        queue = DeviceQueue(device=device_by_name("hdd"))
        queue.enqueue(10 * units.GiB)
        written = queue.drain(dt=1.0, n_streams=1, granularity=4 * units.MiB)
        assert written <= device_by_name("hdd").write_bw * 1.0 + 1e-6
        assert queue.pending_bytes == pytest.approx(10 * units.GiB - written)

    def test_drain_empties_small_queue(self):
        queue = DeviceQueue(device=device_by_name("ram"))
        queue.enqueue(1 * units.MiB)
        written = queue.drain(dt=1.0)
        assert written == pytest.approx(1 * units.MiB)
        assert queue.pending_bytes == 0.0

    def test_null_device_is_instant_and_never_busy(self):
        queue = DeviceQueue(device=device_by_name("null"))
        queue.enqueue(100 * units.GiB)
        written = queue.drain(dt=0.001)
        assert written == pytest.approx(100 * units.GiB)
        assert queue.utilization() == 0.0

    def test_negative_enqueue_rejected(self):
        queue = DeviceQueue(device=device_by_name("hdd"))
        with pytest.raises(SimulationError):
            queue.enqueue(-1.0)

    def test_non_positive_dt_rejected(self):
        queue = DeviceQueue(device=device_by_name("hdd"))
        with pytest.raises(SimulationError):
            queue.drain(dt=0.0)


class TestUtilization:
    def test_idle_queue_has_zero_utilization(self):
        queue = DeviceQueue(device=device_by_name("hdd"))
        assert queue.utilization() == 0.0
        queue.drain(dt=1.0)
        assert queue.utilization() == 0.0

    def test_saturated_queue_has_full_utilization(self):
        queue = DeviceQueue(device=device_by_name("hdd"))
        queue.enqueue(100 * units.GiB)
        for _ in range(5):
            queue.drain(dt=0.5)
        assert queue.utilization() == pytest.approx(1.0)

    def test_partial_utilization(self):
        device = device_by_name("ram")
        queue = DeviceQueue(device=device)
        # Enqueue half a second worth of work, observe a full second.
        queue.enqueue(device.write_bw * 0.5)
        queue.drain(dt=1.0, n_streams=1, granularity=64 * units.MiB)
        assert 0.4 <= queue.utilization() <= 0.6

    def test_reset_clears_everything(self):
        queue = DeviceQueue(device=device_by_name("hdd"))
        queue.enqueue(units.GiB)
        queue.drain(dt=1.0)
        queue.reset()
        assert queue.pending_bytes == 0.0
        assert queue.written_bytes == 0.0
        assert queue.utilization() == 0.0

    def test_more_streams_never_increase_throughput(self):
        device = device_by_name("hdd")
        single = DeviceQueue(device=device)
        many = DeviceQueue(device=device)
        for queue in (single, many):
            queue.enqueue(10 * units.GiB)
        written_single = single.drain(dt=1.0, n_streams=1, granularity=units.MiB)
        written_many = many.drain(dt=1.0, n_streams=64, granularity=units.MiB)
        assert written_many <= written_single + 1e-6
