"""Integration of the telemetry layer with the engine, executor, cache and
matrix fabric — the instrumented paths actually emit what the reports read."""

import json

import pytest

from repro.obs.schema import validate_events_jsonl, validate_telemetry_document
from repro.obs.telemetry import telemetry_session
from repro.runner.cache import ResultCache
from repro.runner.executor import ParallelExecutor, TaskSpec, execute_cached
from repro.runner.store import load_manifest
from repro.scenarios.matrix import run_interference_matrix, store_matrix

TASKS = [
    TaskSpec("t1", "experiment",
             {"experiment_id": "table1", "scale": "tiny", "quick": True}),
]


class TestEngineCounters:
    def test_simulator_stats_shape(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        sim.schedule(1.0, lambda s: None, label="x")
        sim.run(until=2.0)
        stats = sim.stats()
        assert stats["engine.events.scheduled"] >= 1
        assert stats["engine.events.processed"] >= 1
        assert set(stats) == {
            "engine.events.scheduled", "engine.events.processed",
            "engine.events.cancelled", "engine.events.rescheduled",
            "engine.heap.compactions",
        }

    def test_simulation_publishes_counters_and_spans(self):
        from repro.config.presets import make_scenario
        from repro.model.simulator import simulate_scenario

        with telemetry_session("sim") as session:
            simulate_scenario(make_scenario("tiny"))
            doc = session.to_document()
        assert doc["counters"]["sim.steps"] > 0
        assert doc["counters"]["engine.events.processed"] > 0
        assert any(k.startswith("step.phase.") for k in doc["counters"])
        categories = {s["category"] for s in doc["spans"]}
        assert "simulation" in categories and "phase" in categories
        sim_span = next(s for s in doc["spans"] if s["category"] == "simulation")
        assert all(
            s["parent"] == sim_span["id"]
            for s in doc["spans"] if s["category"] == "phase"
        )

    def test_local_write_model_publishes(self):
        from repro.model.local import simulate_local_writes
        from repro.storage import device_by_name

        with telemetry_session("local") as session:
            simulate_local_writes(device_by_name("ram"), n_apps=1,
                                  bytes_per_app=64 * 2 ** 20)
            doc = session.to_document()
        assert doc["counters"]["engine.events.processed"] > 0
        assert any(s["name"] == "local:RAMx1" for s in doc["spans"])


class TestExecutorTelemetry:
    def test_serial_map_records_task_spans(self):
        with telemetry_session("exec") as session:
            ParallelExecutor(jobs=1).map(TASKS)
            doc = session.to_document()
        assert doc["counters"]["executor.tasks.completed"] == 1
        assert doc["gauges"]["executor.jobs"] == 1.0
        task_span = next(s for s in doc["spans"] if s["category"] == "task")
        assert task_span["name"] == "t1"
        assert task_span["args"]["kind"] == "experiment"
        validate_telemetry_document(doc)

    def test_serial_map_fills_task_records_without_telemetry(self):
        records = {}
        ParallelExecutor(jobs=1).map(TASKS, task_records=records)
        assert records["t1"]["wall_time_s"] > 0
        assert records["t1"]["queue_wait_s"] == 0.0

    def test_parallel_map_merges_worker_snapshots(self):
        tasks = [
            TaskSpec(e, "experiment",
                     {"experiment_id": e, "scale": "tiny", "quick": True})
            for e in ("table1", "figure10")
        ]
        records = {}
        with telemetry_session("exec") as session:
            ParallelExecutor(jobs=2).map(tasks, task_records=records)
            doc = session.to_document()
        validate_telemetry_document(doc)
        assert doc["counters"]["executor.tasks.completed"] == 2
        task_spans = [s for s in doc["spans"] if s["category"] == "task"]
        assert {s["name"] for s in task_spans} == {"table1", "figure10"}
        # worker-side simulation activity merged under the task spans
        worker_spans = [s for s in doc["spans"] if s["track"] == "workers"]
        assert worker_spans
        task_ids = {s["id"] for s in task_spans}
        roots = [s for s in worker_spans if s["parent"] in task_ids]
        assert roots
        assert doc["counters"]["engine.events.processed"] > 0
        for record in records.values():
            assert record["wall_time_s"] > 0
            assert record["queue_wait_s"] >= 0.0

    def test_disabled_telemetry_map_is_unobserved(self):
        results = ParallelExecutor(jobs=1).map(TASKS)
        assert results[0]["experiment_id"] == "table1"


class TestCacheTelemetry:
    def test_probe_hit_miss_store_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with telemetry_session("cache") as session:
            assert cache.get("fp1") is None  # miss
            cache.put("fp1", {"x": 1}, {"k": "v"})  # store
            assert cache.get("fp1") == {"x": 1}  # hit
            doc = session.to_document()
        assert doc["counters"]["cache.probe"] == 2
        assert doc["counters"]["cache.miss"] == 1
        assert doc["counters"]["cache.hit"] == 1
        assert doc["counters"]["cache.store"] == 1
        assert doc["counters"]["cache.bytes_written"] > 0
        events = validate_events_jsonl(session.events_jsonl())
        assert any(e["event"] == "cache_store" for e in events)

    def test_execute_cached_records_provenance(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fingerprint_for = lambda task: f"fp-{task.task_id}"

        cold = {}
        execute_cached(TASKS, cache=cache, fingerprint_for=fingerprint_for,
                       task_records=cold)
        assert cold["t1"]["origin"] == "computed"
        assert cold["t1"]["fingerprint"] == "fp-t1"
        assert cold["t1"]["wall_time_s"] > 0

        warm = {}
        with telemetry_session("warm") as session:
            execute_cached(TASKS, cache=cache, fingerprint_for=fingerprint_for,
                           task_records=warm)
            doc = session.to_document()
        assert warm["t1"]["origin"] == "cache"
        assert warm["t1"]["wall_time_s"] == 0.0
        assert doc["counters"]["executor.tasks.cached"] == 1
        assert doc["counters"]["cache.hit"] == 1
        assert "executor.tasks.completed" not in doc["counters"]


class TestMatrixTelemetry:
    @pytest.fixture(scope="class")
    def observed_matrix(self, tmp_path_factory):
        cache_dir = str(tmp_path_factory.mktemp("cache"))
        with telemetry_session("matrix") as session:
            matrix = run_interference_matrix(
                ["streaming", "checkpoint"], "tiny", cache_dir=cache_dir,
            )
            document = session.to_document(run_id="test")
        return matrix, document, session

    def test_campaign_span_wraps_tasks(self, observed_matrix):
        matrix, document, _ = observed_matrix
        validate_telemetry_document(document)
        campaign = next(
            s for s in document["spans"] if s["category"] == "campaign"
        )
        task_spans = [s for s in document["spans"] if s["category"] == "task"]
        assert campaign["name"] == "matrix:tiny"
        assert len(task_spans) == len(matrix.task_records)
        assert all(s["parent"] == campaign["id"] for s in task_spans)

    def test_task_records_cover_every_task(self, observed_matrix):
        matrix, document, _ = observed_matrix
        assert set(matrix.task_records) == {
            s["name"] for s in document["spans"] if s["category"] == "task"
        }
        for record in matrix.task_records.values():
            assert record["origin"] == "computed"
            assert "fingerprint" in record

    def test_task_records_excluded_from_serialization(self, observed_matrix):
        matrix, _, _ = observed_matrix
        assert "task_records" not in matrix.to_dict()

    def test_store_matrix_persists_telemetry(self, observed_matrix, tmp_path):
        matrix, _, session = observed_matrix
        run_dir = store_matrix(matrix, str(tmp_path / "runs"),
                               telemetry=session)
        manifest = load_manifest(run_dir)
        assert manifest["telemetry"] == {
            "document": "telemetry.json",
            "events": "telemetry_events.jsonl",
        }
        document = json.loads(
            (tmp_path / "runs" / manifest["run_id"] / "telemetry.json")
            .read_text(encoding="utf-8")
        )
        validate_telemetry_document(document)
        assert document["run_id"] == manifest["run_id"]
        assert set(manifest["tasks"]) == set(matrix.task_records)
        for record in manifest["tasks"].values():
            assert record["origin"] in ("computed", "cache")
            assert isinstance(record["wall_time_s"], float)

    def test_store_matrix_without_telemetry_keeps_manifest_shape(
        self, observed_matrix, tmp_path
    ):
        matrix, _, _ = observed_matrix
        run_dir = store_matrix(matrix, str(tmp_path / "plain"))
        manifest = load_manifest(run_dir)
        assert "telemetry" not in manifest
        assert "tasks" not in manifest
