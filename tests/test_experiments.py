"""Tests for the experiment registry and (tiny-scale) experiment runs."""

import pytest

from repro import units
from repro.errors import AnalysisError, ExperimentError
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments import figure2, figure4, figure7, figure10, figure12, table1


class TestRegistry:
    def test_all_paper_results_registered(self):
        expected = {"table1"} | {f"figure{i}" for i in range(2, 13)}
        assert set(EXPERIMENTS) == expected

    def test_lookup(self):
        entry = get_experiment("Figure5")
        assert entry.experiment_id == "figure5"
        with pytest.raises(ExperimentError):
            get_experiment("figure99")

    def test_list_order(self):
        ids = [e.experiment_id for e in list_experiments()]
        assert ids[0] == "table1"
        assert ids[1] == "figure2"
        assert ids[-1] == "figure12"


class TestExperimentResultContainer:
    def make(self):
        return ExperimentResult("x", "title", "Figure X")

    def test_tables_and_metrics(self):
        result = self.make()
        result.add_table("t", [{"a": 1}])
        result.add_metric("m", 2.0)
        result.add_note("hello")
        assert result.table("t") == [{"a": 1}]
        assert result.metric("m") == 2.0
        assert "hello" in result.report()
        assert "a" in result.table_csv("t")
        assert result.summary()["m"] == 2.0

    def test_missing_items_raise(self):
        result = self.make()
        with pytest.raises(AnalysisError):
            result.table("missing")
        with pytest.raises(AnalysisError):
            result.sweep("missing")
        with pytest.raises(AnalysisError):
            result.metric("missing")
        with pytest.raises(AnalysisError):
            result.add_table("empty", [])


class TestTable1:
    def test_reproduces_device_ordering(self):
        result = table1.run(quick=True)
        rows = {row["device"]: row for row in result.table("table1")}
        assert rows["HDD"]["slowdown"] > rows["SSD"]["slowdown"] > rows["RAM"]["slowdown"]
        assert rows["HDD"]["slowdown"] > 2.0
        assert rows["RAM"]["slowdown"] < 2.0
        assert "table1" in result.report()


class TestTinyScaleExperiments:
    """Smoke tests of the experiment machinery at the test scale.

    The quantitative reproduction claims are validated at the reduced scale
    by the benchmark harness; here we only check that each experiment builds,
    runs and exposes the expected tables at the tiny scale.
    """

    def test_figure2_structure(self):
        result = figure2.run(scale="tiny", devices=["hdd"], n_points=3)
        assert "figure2_summary" in result.tables
        assert "hdd.sync-on" in result.sweeps
        assert "null-aio" in result.sweeps
        assert result.sweep("hdd.sync-on").peak_interference_factor() > 1.3
        assert result.sweep("null-aio").is_flat(0.2)

    def test_figure4_structure(self):
        result = figure4.run(scale="tiny", n_points=3)
        rows = result.table("figure4_summary")
        assert {r["configuration"] for r in rows} == {
            "16 writers per node",
            "1 writer per node",
        }
        one_writer = [r for r in rows if r["configuration"] == "1 writer per node"][0]
        all_cores = [r for r in rows if r["configuration"] == "16 writers per node"][0]
        assert one_writer["collapses"] <= all_cores["collapses"]

    def test_figure7_structure(self):
        result = figure7.run(scale="tiny", devices=["hdd"], n_points=3)
        row = result.table("figure7_summary")[0]
        assert row["partitioned_peak_IF"] < row["shared_peak_IF"]
        assert row["partitioned_alone_s"] > row["shared_alone_s"]

    def test_figure10_structure(self):
        result = figure10.run(scale="tiny", quick=True)
        rows = {r["run"]: r for r in result.table("figure10_windows")}
        assert set(rows) == {"alone", "interfering"}
        assert rows["interfering"]["window_collapses"] >= rows["alone"]["window_collapses"]

    def test_figure12_structure(self):
        result = figure12.run(scale="tiny", procs_per_node_values=[1, 4], n_points=3)
        rows = result.table("figure12_summary")
        assert len(rows) == 2
        assert rows[0]["total_clients"] < rows[1]["total_clients"]
        assert rows[1]["collapses"] >= rows[0]["collapses"]

    def test_run_experiment_dispatch(self):
        result = run_experiment("table1", quick=True, devices=["ram"])
        assert result.experiment_id == "table1"
