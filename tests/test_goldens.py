"""Golden-trace regression tests.

Every preset configuration and workload archetype has a recorded
full-precision metric fingerprint under ``tests/goldens/``.  Fixed-stepping
runs must reproduce them byte for byte; a drifted fingerprint fails loudly
with the payload diff and the regeneration hint.
"""

import json

import pytest

from tests._golden_utils import (
    GOLDENS_PATH,
    REGEN_HINT,
    compute_golden,
    golden_cases,
    load_goldens,
    metric_fingerprint,
)

CASES = golden_cases()


@pytest.fixture(scope="module")
def goldens():
    return load_goldens()


def _diff_payload(expected, actual, prefix=""):
    """Human-readable leaf-level differences between two payloads."""
    lines = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in expected:
                lines.append(f"  + {path} (new): {actual[key]!r}")
            elif key not in actual:
                lines.append(f"  - {path} (gone): {expected[key]!r}")
            else:
                lines.extend(_diff_payload(expected[key], actual[key], path))
    elif expected != actual:
        lines.append(f"  ~ {prefix}: golden {expected!r} != measured {actual!r}")
    return lines


class TestGoldenTraces:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_fingerprint_is_stable(self, name, goldens):
        assert name in goldens, (
            f"no golden recorded for case {name!r}; {REGEN_HINT}"
        )
        digest, payload = compute_golden(CASES[name])
        stored = goldens[name]
        if digest != stored["fingerprint"]:
            diff = "\n".join(_diff_payload(stored["payload"], payload))
            pytest.fail(
                f"golden trace drifted for {name!r}:\n{diff}\n{REGEN_HINT}",
                pytrace=False,
            )

    def test_no_stale_goldens(self, goldens):
        """Every stored golden still has a case (and vice versa)."""
        assert set(goldens) == set(CASES), (
            f"goldens.json and the case list disagree "
            f"(stale: {sorted(set(goldens) - set(CASES))}, "
            f"missing: {sorted(set(CASES) - set(goldens))}); {REGEN_HINT}"
        )

    def test_goldens_file_is_canonical(self):
        """goldens.json is exactly what regen_goldens would write (sorted,
        2-space indented) so diffs stay reviewable."""
        text = GOLDENS_PATH.read_text(encoding="utf-8")
        document = json.loads(text)
        assert text == json.dumps(document, indent=2, sort_keys=True) + "\n"
        assert "regen_goldens" in document["_comment"]


class TestFingerprintMachinery:
    def test_repeated_run_is_byte_stable(self):
        """The same scenario simulated twice fingerprints identically."""
        factory = CASES["preset/hdd-sync-on"]
        digest_1, payload_1 = compute_golden(factory)
        digest_2, payload_2 = compute_golden(factory)
        assert digest_1 == digest_2
        assert payload_1 == payload_2

    def test_fingerprint_covers_every_series(self):
        from repro.model.simulator import simulate_scenario

        result = simulate_scenario(CASES["preset/hdd-sync-on"]())
        _, payload = metric_fingerprint(result)
        assert set(payload["series"]) == set(result.recorder.series_names())
        assert payload["apps"].keys() == result.applications.keys()

    def test_fingerprint_is_sensitive_to_drift(self):
        """A one-ULP change in any covered metric changes the digest."""
        import math

        from repro.model.simulator import simulate_scenario

        result = simulate_scenario(CASES["preset/hdd-sync-on"]())
        digest, _ = metric_fingerprint(result)
        app = next(iter(result.applications))
        nudged = result.applications[app]
        object.__setattr__(
            nudged, "end_time", math.nextafter(nudged.end_time, float("inf"))
        )
        digest_nudged, _ = metric_fingerprint(result)
        assert digest != digest_nudged

    def test_payload_excludes_wall_time(self):
        from repro.model.simulator import simulate_scenario

        result = simulate_scenario(CASES["preset/hdd-sync-on"]())
        _, payload = metric_fingerprint(result)
        assert "wall_time" not in json.dumps(payload)

    def test_regen_script_is_idempotent(self, tmp_path, monkeypatch):
        """Running the regen script against current code reproduces the
        checked-in goldens byte for byte (fails when a golden is stale)."""
        import tests._golden_utils as utils
        import tests.regen_goldens as regen

        target = tmp_path / "goldens.json"
        monkeypatch.setattr(utils, "GOLDENS_PATH", target)
        monkeypatch.setattr(regen, "GOLDENS_PATH", target)
        assert regen.main() == 0
        assert target.read_text(encoding="utf-8") == GOLDENS_PATH.read_text(
            encoding="utf-8"
        )


class TestTelemetryTransparency:
    """Telemetry collection must never perturb simulation results.

    Every golden case is recomputed with a live telemetry registry
    installed; the fingerprint must match the stored golden byte for byte —
    the observability layer touches no RNG stream and no model array.
    """

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_fingerprint_identical_with_telemetry_enabled(self, name, goldens):
        from repro.obs.telemetry import telemetry_session

        with telemetry_session(f"golden:{name}") as session:
            digest, _ = compute_golden(CASES[name])
            document = session.to_document()
        assert digest == goldens[name]["fingerprint"], (
            f"telemetry perturbed the simulation of {name!r}"
        )
        # and the run actually was observed (the test is not vacuous)
        assert document["counters"].get("sim.steps", 0) > 0
        assert any(s["category"] == "simulation" for s in document["spans"])
