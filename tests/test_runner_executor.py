"""Tests for the parallel task executor and deterministic seeding."""

import pytest

from repro.config.presets import make_scenario
from repro.core.delta import run_delta_sweep
from repro.errors import ExperimentError
from repro.runner.executor import (
    ParallelExecutor,
    TaskSpec,
    derive_task_seed,
    run_delta_sweep_parallel,
)


class TestDeriveTaskSeed:
    def test_deterministic(self):
        assert derive_task_seed(0, "table1") == derive_task_seed(0, "table1")

    def test_task_id_changes_seed(self):
        assert derive_task_seed(0, "table1") != derive_task_seed(0, "figure2")

    def test_master_seed_changes_seed(self):
        assert derive_task_seed(0, "table1") != derive_task_seed(1, "table1")

    def test_in_valid_range(self):
        seed = derive_task_seed(12345, "anything")
        assert 0 <= seed < 2 ** 63


class TestParallelExecutor:
    def test_rejects_bad_jobs(self):
        with pytest.raises(ExperimentError):
            ParallelExecutor(jobs=0)

    def test_empty_map(self):
        assert ParallelExecutor(jobs=2).map([]) == []

    def test_rejects_duplicate_task_ids(self):
        tasks = [
            TaskSpec("same", "experiment", {"experiment_id": "table1",
                                            "scale": "tiny", "quick": True})
            for _ in range(2)
        ]
        with pytest.raises(ExperimentError):
            ParallelExecutor(jobs=1).map(tasks)

    def test_unknown_kind_fails_loudly(self):
        with pytest.raises(ExperimentError):
            ParallelExecutor(jobs=1).map([TaskSpec("t", "no-such-kind")])

    def test_serial_experiment_task(self):
        tasks = [TaskSpec("table1", "experiment",
                          {"experiment_id": "table1", "scale": "tiny", "quick": True})]
        seen = []
        results = ParallelExecutor(jobs=1).map(
            tasks, progress=lambda task, result: seen.append(task.task_id)
        )
        assert seen == ["table1"]
        assert results[0]["experiment_id"] == "table1"
        assert results[0]["result"]["tables"]["table1"]
        assert results[0]["checks"]

    def test_parallel_results_keep_task_order(self):
        # figure11 is slower than table1; order must follow submission anyway.
        ids = ["figure11", "table1", "figure10"]
        tasks = [
            TaskSpec(e, "experiment", {"experiment_id": e, "scale": "tiny", "quick": True})
            for e in ids
        ]
        results = ParallelExecutor(jobs=2).map(tasks)
        assert [r["experiment_id"] for r in results] == ids

    def test_worker_failure_propagates_with_task_id(self):
        tasks = [TaskSpec("boom", "experiment",
                          {"experiment_id": "figure99", "scale": "tiny", "quick": True})]
        with pytest.raises(ExperimentError, match="boom|figure99"):
            ParallelExecutor(jobs=2).map(tasks)


class TestParallelDeltaSweep:
    @pytest.fixture(scope="class")
    def scenario(self):
        return make_scenario("tiny", device="ssd", sync_mode="sync-on")

    def test_matches_serial_sweep(self, scenario):
        deltas = [-0.5, 0.0, 0.5]
        serial = run_delta_sweep(scenario, deltas, seed=7)
        parallel = run_delta_sweep_parallel(scenario, deltas, jobs=2, seed=7)
        assert serial.to_dict() == parallel.to_dict()

    def test_needs_two_applications(self, scenario):
        alone = scenario.with_applications(scenario.applications[:1])
        with pytest.raises(ExperimentError):
            run_delta_sweep_parallel(alone, [0.0], jobs=1)

    def test_run_sweep_jobs_matches_serial(self):
        from repro.core.experiment import TwoApplicationExperiment

        serial = TwoApplicationExperiment("tiny", device="ram").run_sweep(n_points=3)
        parallel = TwoApplicationExperiment("tiny", device="ram").run_sweep(
            n_points=3, jobs=2
        )
        assert parallel.to_dict() == serial.to_dict()
