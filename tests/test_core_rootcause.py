"""Unit tests for root-cause attribution on synthetic component statistics."""

import numpy as np
import pytest

from repro.core.rootcause import Contender, attribute_root_cause
from repro.errors import AnalysisError
from repro.model.results import ApplicationResult, ComponentStats, RunResult
from repro.sim.tracing import TraceRecorder


def make_result(
    tiny_scenario,
    *,
    client_nic=0.1,
    server_nic=0.1,
    server=0.2,
    device=0.2,
    pressure=0.0,
    collapses=0,
    simulated_time=10.0,
):
    """Synthetic RunResult with chosen component utilizations."""
    apps = {
        "A": ApplicationResult("A", 0.0, simulated_time, 1e9, collapses // 2),
        "B": ApplicationResult("B", 0.0, simulated_time, 1e9, collapses - collapses // 2),
    }
    components = ComponentStats(
        client_nic_utilization=client_nic,
        server_nic_utilization=server_nic,
        server_utilization=np.full(4, server),
        device_utilization=np.full(4, device),
        buffer_pressure=np.full(4, pressure),
        total_window_collapses=collapses,
    )
    return RunResult(
        scenario=tiny_scenario,
        applications=apps,
        components=components,
        recorder=TraceRecorder(),
        simulated_time=simulated_time,
        n_steps=100,
        wall_time=0.01,
    )


class TestDominantContender:
    def test_device_dominates(self, tiny_scenario):
        result = make_result(tiny_scenario, device=0.95, server=0.5)
        report = attribute_root_cause(result)
        assert report.dominant is Contender.DEVICES

    def test_servers_dominate(self, tiny_scenario):
        result = make_result(tiny_scenario, server=0.97, device=0.3)
        report = attribute_root_cause(result)
        assert report.dominant is Contender.SERVERS

    def test_client_nic_dominates(self, tiny_scenario):
        result = make_result(tiny_scenario, client_nic=0.99, device=0.2, server=0.2)
        report = attribute_root_cause(result)
        assert report.dominant is Contender.CLIENT_NIC

    def test_storage_network_dominates(self, tiny_scenario):
        result = make_result(tiny_scenario, server_nic=0.99, device=0.2, server=0.2)
        report = attribute_root_cause(result)
        assert report.dominant is Contender.STORAGE_NETWORK

    def test_flow_control_dominates_with_collapses_and_pressure(self, tiny_scenario):
        result = make_result(
            tiny_scenario, device=0.5, server=0.5, pressure=0.9,
            collapses=20_000, simulated_time=10.0,
        )
        report = attribute_root_cause(result)
        assert report.dominant is Contender.FLOW_CONTROL

    def test_idle_run_reports_no_contention(self, tiny_scenario):
        result = make_result(tiny_scenario, client_nic=0.01, server_nic=0.01,
                             server=0.02, device=0.02)
        report = attribute_root_cause(result)
        assert report.dominant is Contender.NONE


class TestReportContents:
    def test_scores_cover_every_physical_contender(self, tiny_scenario):
        report = attribute_root_cause(make_result(tiny_scenario))
        for contender in (Contender.CLIENT_NIC, Contender.STORAGE_NETWORK,
                          Contender.SERVERS, Contender.DEVICES, Contender.FLOW_CONTROL):
            assert contender in report.scores

    def test_ranked_is_sorted_descending(self, tiny_scenario):
        report = attribute_root_cause(make_result(tiny_scenario, device=0.9))
        scores = [score for _c, score in report.ranked()]
        assert scores == sorted(scores, reverse=True)

    def test_describe_names_dominant_cause(self, tiny_scenario):
        report = attribute_root_cause(make_result(tiny_scenario, device=0.95))
        text = report.describe()
        assert "dominant root cause" in text
        assert Contender.DEVICES.value in text

    def test_utilization_summary_keys(self, tiny_scenario):
        report = attribute_root_cause(make_result(tiny_scenario, collapses=100))
        assert report.utilization_summary["window_collapses"] == 100.0
        assert "mean_buffer_pressure" in report.utilization_summary

    def test_empty_run_rejected(self, tiny_scenario):
        result = make_result(tiny_scenario)
        result.applications = {}
        with pytest.raises(AnalysisError):
            attribute_root_cause(result)


class TestIntegrationWithSimulator:
    def test_contended_hdd_blames_device_or_flow_control(self, tiny_contended_result):
        report = attribute_root_cause(tiny_contended_result)
        assert report.dominant in (Contender.DEVICES, Contender.SERVERS,
                                   Contender.FLOW_CONTROL)

    def test_alone_run_not_attributed_to_flow_control(self, tiny_alone_result):
        report = attribute_root_cause(tiny_alone_result)
        assert report.dominant is not Contender.FLOW_CONTROL
