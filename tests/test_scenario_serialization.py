"""Round-trip serialization of the scenario-fleet result types.

``ScenarioSpec``, ``PairCell`` and ``InterferenceMatrix`` travel through
JSON (runner payloads, the result cache, ``matrix.json``); their
``to_dict``/``from_dict`` must be lossless, and the cache fingerprints
derived from them must be stable across interpreter processes (a cache
written by one campaign must hit from the next).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.runner.cache import fingerprint_payload
from repro.scenarios.matrix import InterferenceMatrix, PairCell, matrix_fingerprint
from repro.scenarios.spec import ScenarioSpec

SRC = str(Path(__file__).resolve().parent.parent / "src")


def sample_cell(a="checkpoint", b="analytics"):
    return PairCell(
        a=a, b=b,
        alone_a=0.36, alone_b=0.9,
        pair_a=0.55, pair_b=1.1,
        makespan=1.2,
        window_collapses=12,
        root_cause="file-system servers",
        root_cause_scores={"file-system servers": 0.97, "flow control (Incast)": 0.4},
    )


def sample_matrix():
    cells = {
        "checkpoint|checkpoint": sample_cell("checkpoint", "checkpoint"),
        "checkpoint|analytics": sample_cell("checkpoint", "analytics"),
        "analytics|analytics": sample_cell("analytics", "analytics"),
    }
    return InterferenceMatrix(
        scale="tiny",
        names=["checkpoint", "analytics"],
        alone={"checkpoint": 0.36, "analytics": 0.9},
        cells=cells,
        options={"device": "hdd", "sync_mode": "sync-on", "network": "10g",
                 "stripe_kib": 64.0, "delay": 0.0, "seed": None},
        stepping=None,
        specs=[ScenarioSpec("checkpoint").to_dict(),
               ScenarioSpec("analytics").to_dict()],
    )


class TestScenarioSpecRoundTrip:
    @pytest.mark.parametrize("spec", [
        ScenarioSpec("checkpoint"),
        ScenarioSpec("analytics", name="scan"),
        ScenarioSpec("incast", start_time=1.5),
        ScenarioSpec("smallfile", nodes=2, procs_per_node=3),
        ScenarioSpec("streaming", bytes_per_process=2.0 * 2**20),
        ScenarioSpec("mixed", request_kib=128.0),
        ScenarioSpec("staggered", name="wf", nodes=4, start_time=0.25,
                     procs_per_node=2, bytes_per_process=1024.0,
                     request_kib=64.0),
    ])
    def test_lossless(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_survives_json(self):
        spec = ScenarioSpec("randomread", nodes=2, request_kib=32.0)
        wire = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(wire) == spec

    def test_coerce(self):
        assert ScenarioSpec.coerce("Checkpoint").archetype == "checkpoint"
        spec = ScenarioSpec("incast")
        assert ScenarioSpec.coerce(spec) is spec

    def test_rejects_unknown_archetype(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec("warp-drive")

    def test_rejects_bad_overrides(self):
        for kwargs in (
            dict(nodes=0), dict(procs_per_node=0),
            dict(bytes_per_process=0.0), dict(request_kib=-1.0),
        ):
            with pytest.raises(ConfigurationError):
                ScenarioSpec("checkpoint", **kwargs)


class TestPairCellRoundTrip:
    def test_lossless(self):
        cell = sample_cell()
        rebuilt = PairCell.from_dict(cell.to_dict())
        assert rebuilt == cell

    def test_derived_fields_recompute(self):
        cell = sample_cell()
        wire = cell.to_dict()
        # Tampering with a stored derived field cannot poison the rebuild.
        wire["slowdown_a"] = 999.0
        rebuilt = PairCell.from_dict(wire)
        assert rebuilt.slowdown_a == pytest.approx(cell.pair_a / cell.alone_a)
        assert rebuilt.asymmetry == pytest.approx(
            cell.slowdown_a - cell.slowdown_b
        )

    def test_survives_json(self):
        cell = sample_cell()
        assert PairCell.from_dict(json.loads(json.dumps(cell.to_dict()))) == cell


class TestMatrixRoundTrip:
    def test_lossless(self):
        matrix = sample_matrix()
        rebuilt = InterferenceMatrix.from_dict(matrix.to_dict())
        assert rebuilt.scale == matrix.scale
        assert rebuilt.names == matrix.names
        assert rebuilt.alone == matrix.alone
        assert rebuilt.cells == matrix.cells
        assert rebuilt.options == matrix.options
        assert rebuilt.specs == matrix.specs

    def test_survives_json(self):
        matrix = sample_matrix()
        wire = json.loads(json.dumps(matrix.to_dict()))
        rebuilt = InterferenceMatrix.from_dict(wire)
        assert rebuilt.to_dict() == matrix.to_dict()

    def test_ordered_lookup_uses_mirror_cells(self):
        matrix = sample_matrix()
        cell = matrix.cell("analytics", "checkpoint")
        assert (cell.a, cell.b) == ("checkpoint", "analytics")
        assert matrix.slowdown_of("analytics", "checkpoint") == pytest.approx(
            cell.slowdown_b
        )
        assert matrix.slowdown_of("checkpoint", "analytics") == pytest.approx(
            cell.slowdown_a
        )

    def test_to_rows_covers_all_ordered_pairs(self):
        matrix = sample_matrix()
        rows = matrix.to_rows()
        assert len(rows) == len(matrix.names) ** 2
        assert {(r["victim"], r["aggressor"]) for r in rows} == {
            (a, b) for a in matrix.names for b in matrix.names
        }


class TestFingerprintStability:
    def test_same_material_same_fingerprint(self):
        spec = ScenarioSpec("checkpoint")
        material = {"specs": [spec.to_dict()], "scale": "tiny"}
        assert fingerprint_payload("matrix-alone", material) == (
            fingerprint_payload("matrix-alone", material)
        )

    def test_fingerprint_separates_kinds_specs_and_versions(self):
        material = {"specs": [ScenarioSpec("checkpoint").to_dict()], "scale": "tiny"}
        other = {"specs": [ScenarioSpec("incast").to_dict()], "scale": "tiny"}
        fp = fingerprint_payload("matrix-alone", material)
        assert fp != fingerprint_payload("matrix-pair", material)
        assert fp != fingerprint_payload("matrix-alone", other)
        assert fp != fingerprint_payload("matrix-alone", material, version="0.0.0")

    def test_key_order_does_not_matter(self):
        a = {"scale": "tiny", "specs": [{"archetype": "checkpoint", "name": ""}]}
        b = {"specs": [{"name": "", "archetype": "checkpoint"}], "scale": "tiny"}
        assert fingerprint_payload("matrix-alone", a) == (
            fingerprint_payload("matrix-alone", b)
        )

    def test_stable_across_processes(self):
        """The fingerprint a fresh interpreter computes matches ours —
        the property that makes the on-disk cache shareable between runs."""
        spec = ScenarioSpec("analytics", nodes=2)
        material = {"specs": [spec.to_dict()], "scale": "tiny",
                    "options": {"device": "hdd"}, "stepping": None}
        expected = fingerprint_payload("matrix-pair", material)
        code = (
            "from repro.runner.cache import fingerprint_payload\n"
            "from repro.scenarios.spec import ScenarioSpec\n"
            "spec = ScenarioSpec('analytics', nodes=2)\n"
            "material = {'specs': [spec.to_dict()], 'scale': 'tiny',\n"
            "            'options': {'device': 'hdd'}, 'stepping': None}\n"
            "print(fingerprint_payload('matrix-pair', material))\n"
        )
        output = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        ).stdout.strip()
        assert output == expected

    def test_matrix_fingerprint_depends_on_every_ingredient(self):
        specs = [ScenarioSpec("checkpoint"), ScenarioSpec("analytics")]
        base = matrix_fingerprint(specs, "tiny", {"device": "hdd"}, None)
        assert base == matrix_fingerprint(specs, "tiny", {"device": "hdd"}, None)
        assert base != matrix_fingerprint(specs, "reduced", {"device": "hdd"}, None)
        assert base != matrix_fingerprint(specs, "tiny", {"device": "ssd"}, None)
        assert base != matrix_fingerprint(
            specs, "tiny", {"device": "hdd"}, {"mode": "adaptive"}
        )
        assert base != matrix_fingerprint(specs[:1], "tiny", {"device": "hdd"}, None)
