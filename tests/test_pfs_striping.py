"""Tests for the round-robin striping arithmetic."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.pfs.striping import (
    extent_to_server_bytes,
    extents_to_server_matrix,
    server_of_stripe,
    servers_touched,
    stripe_span,
)

KIB = units.KiB


class TestStripeMath:
    def test_server_of_stripe_round_robin(self):
        servers = (0, 1, 2, 3)
        assert [server_of_stripe(k, servers) for k in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_server_of_stripe_subset(self):
        servers = (5, 7)
        assert server_of_stripe(0, servers) == 5
        assert server_of_stripe(3, servers) == 7

    def test_server_of_stripe_empty(self):
        with pytest.raises(ConfigurationError):
            server_of_stripe(0, ())

    def test_stripe_span(self):
        assert stripe_span(0, 64 * KIB, 64 * KIB) == (0, 0)
        assert stripe_span(0, 64 * KIB + 1, 64 * KIB) == (0, 1)
        assert stripe_span(130 * KIB, 10 * KIB, 64 * KIB) == (2, 2)
        assert stripe_span(10, 0, 64 * KIB) == (0, -1)

    def test_stripe_span_validation(self):
        with pytest.raises(ConfigurationError):
            stripe_span(-1, 10, 64)
        with pytest.raises(ConfigurationError):
            stripe_span(0, 10, 0)


class TestExtentToServerBytes:
    def test_conservation(self):
        out = extent_to_server_bytes(0, 1 * units.MiB, 64 * KIB, (0, 1, 2, 3), 4)
        assert out.sum() == pytest.approx(1 * units.MiB)

    def test_aligned_extent_spreads_evenly(self):
        out = extent_to_server_bytes(0, 4 * 64 * KIB, 64 * KIB, (0, 1, 2, 3), 4)
        assert np.allclose(out, 64 * KIB)

    def test_one_stripe_hits_one_server(self):
        out = extent_to_server_bytes(64 * KIB, 64 * KIB, 64 * KIB, (0, 1, 2, 3), 4)
        assert out[1] == 64 * KIB
        assert out[[0, 2, 3]].sum() == 0

    def test_partial_stripes(self):
        out = extent_to_server_bytes(32 * KIB, 64 * KIB, 64 * KIB, (0, 1), 2)
        assert out[0] == pytest.approx(32 * KIB)
        assert out[1] == pytest.approx(32 * KIB)

    def test_subset_of_servers(self):
        out = extent_to_server_bytes(0, 256 * KIB, 64 * KIB, (2, 5), 8)
        assert out[2] == pytest.approx(128 * KIB)
        assert out[5] == pytest.approx(128 * KIB)
        assert out.sum() == pytest.approx(256 * KIB)

    def test_zero_length(self):
        out = extent_to_server_bytes(0, 0, 64 * KIB, (0, 1), 2)
        assert out.sum() == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            extent_to_server_bytes(0, 10, 64 * KIB, (0, 9), 4)
        with pytest.raises(ConfigurationError):
            extent_to_server_bytes(0, 10, 64 * KIB, (), 4)
        with pytest.raises(ConfigurationError):
            extent_to_server_bytes(0, 10, 64 * KIB, (0,), 0)


class TestMatrixAndTouched:
    def test_matrix_shape_and_conservation(self):
        offsets = np.array([0.0, 1.0 * units.MiB])
        lengths = np.array([256.0 * KIB, 256.0 * KIB])
        matrix = extents_to_server_matrix(offsets, lengths, 64 * KIB, (0, 1, 2, 3), 4)
        assert matrix.shape == (2, 4)
        assert np.allclose(matrix.sum(axis=1), lengths)

    def test_matrix_validation(self):
        with pytest.raises(ConfigurationError):
            extents_to_server_matrix(np.array([0.0]), np.array([1.0, 2.0]), 64, (0,), 1)

    def test_servers_touched_counts(self):
        servers = tuple(range(12))
        # 256 KiB request with 64 KiB stripes -> 4 servers.
        assert len(servers_touched(0, 256 * KIB, 64 * KIB, servers)) == 4
        # Same request with a 256 KiB stripe -> 1 server.
        assert len(servers_touched(0, 256 * KIB, 256 * KIB, servers)) == 1
        # A huge request touches every server exactly once in the result.
        touched = servers_touched(0, 100 * units.MiB, 64 * KIB, servers)
        assert sorted(touched) == list(servers)

    def test_servers_touched_empty_extent(self):
        assert servers_touched(0, 0, 64 * KIB, (0, 1)) == ()
